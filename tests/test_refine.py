"""Tests for the model-checking refinement of NOT_CLASSIFIED references.

Three layers, mirroring the refine module's soundness note:

* **unit / fallback** — promotion validation in ``apply_promotions``,
  and budget exhaustion falling back soundly to the unrefined labels
  (same WCET, ``exhausted`` flagged, nothing promoted for abandoned
  sets);
* **acceptance** — the refinement visibly tightens the classic-baseline
  grid (bs/crc/ndes x k1/k15): pinned analysis bounds, a pinned
  optimizer improvement on bs/k1 attributable to the promoted
  reference, and cross-kernel bit-identity of refined runs;
* **differential (slow)** — over generated programs, every NC -> AH /
  NC -> AM / NC -> PS promotion agrees with exhaustive concrete
  simulation (AH never misses, AM never hits, a PS block misses at
  most once per run), and refined WCET <= unrefined WCET.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pipeline import AnalysisPipeline
from repro.analysis.refine import (
    apply_promotions,
    explore_concrete_states,
    refine_classifications,
)
from repro.analysis.wcet import analyze_wcet
from repro.bench.generator import random_program
from repro.bench.registry import load
from repro.cache.classify import Classification, analyze_cache
from repro.cache.concrete import ConcreteCache
from repro.cache.config import TABLE2, CacheConfig, hierarchy_for
from repro.core.optimizer import OptimizerOptions, optimize
from repro.energy.cacti import hierarchy_model
from repro.energy.technology import TECH_45NM
from repro.errors import AnalysisError
from repro.program.acfg import build_acfg
from repro.program.layout import AddressLayout
from repro.sim.executor import block_trace

#: Small shapes the bounded exploration converges on quickly; the same
#: family the abstract-vs-concrete differential suite sweeps.
REFINE_CONFIGS = (
    CacheConfig(1, 16, 256),   # direct-mapped
    CacheConfig(2, 16, 256),   # set-associative
    CacheConfig(4, 32, 512),   # wider blocks, more ways
)


def _single_level_timing(config):
    return hierarchy_model(hierarchy_for(config, None), TECH_45NM).timing


def _refined(acfg, config, with_persistence=False, budget=None):
    """(classifications, promotions, exploration) of one refined run."""
    analysis = analyze_cache(acfg, config, with_persistence=with_persistence)
    exploration = explore_concrete_states(acfg, config, budget=budget)
    promotions = refine_classifications(
        acfg, exploration, analysis.classifications
    )
    return analysis.classifications, promotions, exploration


class TestApplyPromotions:
    def test_applies_promotion_to_nc_slot(self):
        refined = apply_promotions(
            [Classification.NOT_CLASSIFIED, Classification.ALWAYS_HIT],
            {0: Classification.ALWAYS_MISS},
        )
        assert refined == [
            Classification.ALWAYS_MISS, Classification.ALWAYS_HIT
        ]

    def test_rejects_promotion_of_classified_reference(self):
        with pytest.raises(AnalysisError, match="only promote"):
            apply_promotions(
                [Classification.ALWAYS_MISS],
                {0: Classification.ALWAYS_HIT},
            )

    def test_rejects_non_strengthening_label(self):
        with pytest.raises(AnalysisError, match="invalid refinement"):
            apply_promotions(
                [Classification.NOT_CLASSIFIED],
                {0: Classification.NOT_CLASSIFIED},
            )

    def test_accepts_persistent_promotion(self):
        refined = apply_promotions(
            [Classification.NOT_CLASSIFIED],
            {0: Classification.PERSISTENT},
        )
        assert refined == [Classification.PERSISTENT]


class TestBudgetExhaustion:
    """Exhaustion must degrade to the unrefined analysis, never break it."""

    def test_tiny_budget_promotes_nothing(self):
        config = TABLE2["k1"]
        acfg = build_acfg(load("bs"), block_size=config.block_size)
        _, promotions, exploration = _refined(acfg, config, budget=1)
        assert exploration.exhausted
        assert promotions == {}

    def test_exhausted_wcet_equals_unrefined(self):
        config = TABLE2["k1"]
        timing = _single_level_timing(config)
        acfg = build_acfg(load("bs"), block_size=config.block_size)
        base = analyze_wcet(acfg, config, timing, with_persistence=False)
        exhausted = analyze_wcet(
            acfg, config, timing, with_persistence=False,
            refine=True, refine_budget=1,
        )
        assert exhausted.solution.objective == base.solution.objective
        assert list(exhausted.t_w) == list(base.t_w)

    def test_completed_sets_survive_partial_exhaustion(self):
        """Abandoned sets are absent; completed ones keep their fixpoint."""
        config = TABLE2["k1"]
        acfg = build_acfg(load("crc"), block_size=config.block_size)
        full = explore_concrete_states(acfg, config)
        assert not full.exhausted
        partial = explore_concrete_states(
            acfg, config, budget=max(1, full.explored // 2)
        )
        assert partial.exhausted
        assert set(partial.per_set) < set(full.per_set)
        for set_index, exploration in partial.per_set.items():
            assert exploration.in_lines == full.per_set[set_index].in_lines

    def test_pipeline_counts_exhaustion(self):
        config = TABLE2["k1"]
        timing = _single_level_timing(config)
        pipeline = AnalysisPipeline(
            config, timing, with_persistence=False,
            refine=True, refine_budget=1,
        )
        result = pipeline.analyze(load("bs"))
        assert pipeline.stats.refine_runs == 1
        assert pipeline.stats.refine_exhausted == 1
        assert pipeline.stats.refine_promotions == 0
        base = analyze_wcet(
            acfg=result.wcet.acfg, config=config, timing=timing,
            with_persistence=False,
        )
        assert result.wcet.solution.objective == base.solution.objective


class TestRefineOffIdentity:
    """With the flag off, nothing in any serialized surface changes."""

    def test_pipeline_counters_omit_refine_keys_when_off(self):
        config = TABLE2["k1"]
        pipeline = AnalysisPipeline(
            config, _single_level_timing(config), with_persistence=False
        )
        pipeline.analyze(load("bs"))
        counters = pipeline.stats.counters()
        assert not any(key.startswith("refine") for key in counters)

    def test_pipeline_counters_include_refine_keys_when_on(self):
        config = TABLE2["k1"]
        pipeline = AnalysisPipeline(
            config, _single_level_timing(config), with_persistence=False,
            refine=True,
        )
        pipeline.analyze(load("bs"))
        counters = pipeline.stats.counters()
        assert counters["refine_runs"] == 1
        assert counters["refine_promotions"] >= 1
        assert counters["refine_exhausted"] == 0

    def test_options_fingerprint_omits_refine_when_off(self):
        from repro.experiments.cache import options_fingerprint

        off = options_fingerprint(OptimizerOptions())
        assert "refine" not in off
        on = options_fingerprint(OptimizerOptions(refine=True))
        assert on["refine"] is True
        assert {k: v for k, v in on.items() if k != "refine"} == off

    def test_job_fingerprint_stable_for_refine_off_submissions(self):
        from repro.service.protocol import parse_job

        body = {"kind": "optimize", "params": {"program": "bs",
                                               "config": "k1"}}
        base = parse_job(body)
        explicit_off = parse_job(
            {"kind": "optimize",
             "params": {"program": "bs", "config": "k1", "refine": False}}
        )
        assert explicit_off.params == base.params
        refined = parse_job(
            {"kind": "optimize",
             "params": {"program": "bs", "config": "k1", "refine": True}}
        )
        assert dict(refined.params)["refine"] is True
        assert refined.fingerprint() != base.fingerprint()


GRID_BOUNDS = {
    # (program, config): classic-baseline tau_w, unrefined -> refined.
    ("bs", "k1"): (348.0, 316.0),
    ("bs", "k15"): (348.0, 316.0),
    ("crc", "k1"): (3319.0, 3287.0),
    ("crc", "k15"): (3319.0, 3287.0),
    ("ndes", "k1"): (67219.0, 67219.0),   # promotions are all NC->AM
    ("ndes", "k15"): (18419.0, 14355.0),
}


class TestAcceptanceGrid:
    @pytest.mark.parametrize(
        "program,config_id",
        [("bs", "k1"), ("bs", "k15"), ("crc", "k1"), ("crc", "k15")],
    )
    def test_refined_bound_on_grid(self, program, config_id):
        config = TABLE2[config_id]
        timing = _single_level_timing(config)
        acfg = build_acfg(load(program), block_size=config.block_size)
        base = analyze_wcet(acfg, config, timing, with_persistence=False)
        refined = analyze_wcet(
            acfg, config, timing, with_persistence=False, refine=True
        )
        expect_base, expect_refined = GRID_BOUNDS[(program, config_id)]
        assert base.solution.objective == expect_base
        assert refined.solution.objective == expect_refined
        assert refined.solution.objective <= base.solution.objective

    @pytest.mark.slow
    @pytest.mark.parametrize("program,config_id", sorted(GRID_BOUNDS))
    def test_refined_bound_full_grid(self, program, config_id):
        config = TABLE2[config_id]
        timing = _single_level_timing(config)
        acfg = build_acfg(load(program), block_size=config.block_size)
        base = analyze_wcet(acfg, config, timing, with_persistence=False)
        refined = analyze_wcet(
            acfg, config, timing, with_persistence=False, refine=True
        )
        expect_base, expect_refined = GRID_BOUNDS[(program, config_id)]
        assert base.solution.objective == expect_base
        assert refined.solution.objective == expect_refined

    def test_promotion_tightens_optimized_usecase(self):
        """Acceptance criterion: a grid use case gains a tighter WCET
        attributable to a promoted reference (bs/k1, classic baseline:
        the single NC->PS promotion tightens both the original bound
        and the optimized one)."""
        config = TABLE2["k1"]
        timing = _single_level_timing(config)
        acfg = build_acfg(load("bs"), block_size=config.block_size)
        _, promotions, _ = _refined(acfg, config)
        assert Counter(promotions.values()) == {Classification.PERSISTENT: 1}

        reports = {}
        for refine in (False, True):
            opts = OptimizerOptions(with_persistence=False, refine=refine)
            _, reports[refine] = optimize(
                load("bs"), config, timing, options=opts
            )
        assert reports[False].tau_original == 348.0
        assert reports[True].tau_original == 316.0
        assert reports[False].tau_final == 226.0
        assert reports[True].tau_final == 225.0
        assert len(reports[True].inserted) == 3

    @pytest.mark.parametrize("with_persistence", (False, True))
    def test_refine_never_looser_with_either_baseline(self, with_persistence):
        config = TABLE2["k15"]
        timing = _single_level_timing(config)
        for program in ("bs", "crc"):
            acfg = build_acfg(load(program), block_size=config.block_size)
            base = analyze_wcet(
                acfg, config, timing, with_persistence=with_persistence
            )
            refined = analyze_wcet(
                acfg, config, timing, with_persistence=with_persistence,
                refine=True,
            )
            assert refined.solution.objective <= base.solution.objective


class TestCrossKernelBitIdentity:
    """Refined runs must stay bit-identical across cache kernels."""

    @pytest.mark.parametrize("program", ("bs", "crc"))
    def test_refined_pipeline_identical_across_kernels(self, program):
        config = TABLE2["k1"]
        timing = _single_level_timing(config)
        results = {}
        for kernel in ("python", "vectorized"):
            pipeline = AnalysisPipeline(
                config, timing, with_persistence=False,
                kernel=kernel, refine=True,
            )
            results[kernel] = pipeline.analyze(load(program)).wcet
        python, vectorized = results["python"], results["vectorized"]
        assert python.solution.objective == vectorized.solution.objective
        assert list(python.t_w) == list(vectorized.t_w)
        assert (
            list(python.cache.classifications)
            == list(vectorized.cache.classifications)
        )


# ----------------------------------------------------------------------
# differential: promotions vs. exhaustive concrete simulation
# ----------------------------------------------------------------------
def _per_block_concrete_misses(cfg, config, seed):
    """One concrete run: per-uid hit outcomes and per-block miss counts."""
    layout = AddressLayout(cfg)
    cache = ConcreteCache(config)
    outcomes = []
    misses = Counter()
    for block in block_trace(cfg, seed=seed):
        for instr in block.instructions:
            mem_block = config.block_of_address(layout.address(instr.uid))
            hit = cache.access(mem_block)
            outcomes.append((instr.uid, hit))
            if not hit:
                misses[mem_block] += 1
    return outcomes, misses


def _assert_promotions_sound(program_seed, config, run_seeds):
    cfg = random_program(program_seed, target_size=90)
    acfg = build_acfg(cfg, block_size=config.block_size)
    classifications, promotions, exploration = _refined(acfg, config)
    if exploration.exhausted:
        return  # sound fallback; covered by the budget tests
    refined = apply_promotions(classifications, promotions)

    # Promotions are per analysis context (rid); a dynamic fetch only
    # pins down the uid, so the definite per-uid claims need every
    # context of the uid to agree.  The PS claim is per memory block
    # (never evicted => at most one miss per run) and needs no such
    # grouping.
    per_uid = {}
    for vertex in acfg.ref_vertices():
        per_uid.setdefault(vertex.instr.uid, set()).add(refined[vertex.rid])
    promoted_uids = {
        acfg.vertices[rid].instr.uid for rid in promotions
    }
    persistent_blocks = {
        acfg.block_of(rid)
        for rid, label in promotions.items()
        if label is Classification.PERSISTENT
    }

    for run_seed in run_seeds:
        outcomes, misses = _per_block_concrete_misses(cfg, config, run_seed)
        for uid, hit in outcomes:
            if uid not in promoted_uids:
                continue
            classes = per_uid[uid]
            if classes == {Classification.ALWAYS_HIT}:
                assert hit, (
                    f"promoted always-hit uid {uid} missed concretely "
                    f"(program seed {program_seed}, {config.label()})"
                )
            if classes == {Classification.ALWAYS_MISS}:
                assert not hit, (
                    f"promoted always-miss uid {uid} hit concretely "
                    f"(program seed {program_seed}, {config.label()})"
                )
        for block in persistent_blocks:
            assert misses[block] <= 1, (
                f"promoted persistent block {block} missed "
                f"{misses[block]} times (program seed {program_seed}, "
                f"{config.label()})"
            )


class TestDifferentialDeterministic:
    @pytest.mark.parametrize("config", REFINE_CONFIGS,
                             ids=lambda c: c.label())
    @pytest.mark.parametrize("program_seed", (3, 17))
    def test_promotions_sound_on_generated_programs(
        self, program_seed, config
    ):
        _assert_promotions_sound(program_seed, config, run_seeds=(0, 1))


@pytest.mark.slow
class TestDifferentialPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        program_seed=st.integers(min_value=0, max_value=10_000),
        config=st.sampled_from(REFINE_CONFIGS),
    )
    def test_promotions_agree_with_concrete_simulation(
        self, program_seed, config
    ):
        _assert_promotions_sound(program_seed, config, run_seeds=(0, 1, 2))

    @settings(max_examples=15, deadline=None)
    @given(
        program_seed=st.integers(min_value=0, max_value=10_000),
        config=st.sampled_from(REFINE_CONFIGS),
        with_persistence=st.booleans(),
    )
    def test_refined_wcet_never_exceeds_unrefined(
        self, program_seed, config, with_persistence
    ):
        cfg = random_program(program_seed, target_size=80)
        acfg = build_acfg(cfg, block_size=config.block_size)
        timing = _single_level_timing(config)
        base = analyze_wcet(
            acfg, config, timing, with_persistence=with_persistence
        )
        refined = analyze_wcet(
            acfg, config, timing, with_persistence=with_persistence,
            refine=True,
        )
        assert refined.solution.objective <= base.solution.objective
