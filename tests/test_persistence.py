"""Tests for the persistence ("first miss") domain."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.concrete import ConcreteCache
from repro.cache.config import CacheConfig
from repro.cache.persistence import PersistenceState
from repro.errors import AnalysisError

CFG2 = CacheConfig(2, 16, 64)  # 2 sets, 2-way


class TestUpdate:
    def test_access_sets_age_zero(self):
        state = PersistenceState(CFG2).update(0)
        assert state.age_of(0) == 0
        assert state.is_persistent(0)

    def test_never_loaded_is_persistent(self):
        assert PersistenceState(CFG2).is_persistent(12)

    def test_saturation_is_sticky(self):
        # 3 distinct blocks through a 2-way set push the first to ⊤.
        state = PersistenceState(CFG2).update(0).update(2).update(4)
        assert state.age_of(0) == CFG2.associativity  # ⊤
        assert not state.is_persistent(0)
        # re-accessing other blocks never resurrects persistence...
        state = state.update(2)
        assert not state.is_persistent(0)
        # ...but re-accessing the block itself restarts its life.
        state = state.update(0)
        assert state.is_persistent(0)

    def test_rehit_does_not_age_older_blocks(self):
        state = PersistenceState(CFG2).update(0).update(2)
        before = state.age_of(0)
        state = state.update(2)  # MRU re-access
        assert state.age_of(0) == before

    def test_invalid_age_rejected(self):
        with pytest.raises(AnalysisError):
            PersistenceState(CFG2, {0: {5: 99}})


class TestJoin:
    def test_max_age_wins(self):
        a = PersistenceState(CFG2).update(0).update(2)  # 0 at age 1
        b = PersistenceState(CFG2).update(2).update(0)  # 0 at age 0
        joined = a.join(b)
        assert joined.age_of(0) == 1

    def test_top_is_sticky_across_join(self):
        evicted = PersistenceState(CFG2).update(0).update(2).update(4)
        fresh = PersistenceState(CFG2).update(0)
        joined = evicted.join(fresh)
        assert not joined.is_persistent(0)

    def test_one_sided_block_keeps_age(self):
        a = PersistenceState(CFG2).update(0)
        b = PersistenceState(CFG2)
        joined = a.join(b)
        assert joined.age_of(0) == 0

    def test_config_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            PersistenceState(CFG2).join(PersistenceState(CacheConfig(4, 16, 64)))

    def test_identical_sets_shared(self):
        a = PersistenceState(CFG2).update(0)
        joined = a.join(a)
        assert joined == a


class TestSoundness:
    @given(
        blocks=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=100),
        assoc=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_persistence_claim_is_per_reference_sound(self, blocks, assoc):
        """At each access: if the in-state carries a below-⊤ age bound
        for the block (i.e. "loaded and never evicted since"), the
        access must hit concretely.

        This is the property the classifier relies on: a reference whose
        in-state is persistent either hits or is the block's first load.
        """
        config = CacheConfig(assoc, 16, assoc * 32)
        state = PersistenceState(config)
        cache = ConcreteCache(config)
        for block in blocks:
            bound = state.age_of(block)
            claims_cached = bound is not None and bound < state.top
            hit = cache.access(block)
            if claims_cached:
                assert hit
            state = state.update(block)

    @given(
        blocks=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=80)
    )
    @settings(max_examples=40, deadline=None)
    def test_age_bound_dominates_concrete_age(self, blocks):
        """The persistence age bound is an upper bound on the concrete
        LRU position while the block is cached."""
        config = CFG2
        state = PersistenceState(config)
        cache = ConcreteCache(config)
        for block in blocks:
            cache.access(block)
            state = state.update(block)
            for cached in cache.cached_blocks():
                bound = state.age_of(cached)
                if bound is not None and bound < state.top:
                    assert cache.age_of(cached) <= bound
