"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestListing:
    def test_list_programs(self, capsys):
        assert main(["list-programs"]) == 0
        out = capsys.readouterr().out
        assert "adpcm" in out and "whet" in out
        assert out.count("\n") == 37

    def test_list_configs(self, capsys):
        assert main(["list-configs"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 36
        assert "k36" in out

    def test_tables(self, capsys):
        assert main(["table", "1"]) == 0
        assert "p37" in capsys.readouterr().out
        assert main(["table", "2"]) == 0
        assert "(4, 32, 8192)" in capsys.readouterr().out


class TestOptimize:
    def test_optimize_reports_and_verifies(self, capsys):
        code = main(["optimize", "bs", "k1", "45nm", "--budget", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Theorem 1  : True" in out

    def test_optimize_by_table1_id(self, capsys):
        assert main(["optimize", "p2", "k1", "--budget", "10"]) == 0
        assert "bs" in capsys.readouterr().out

    def test_classic_baseline_flag(self, capsys):
        code = main(
            ["optimize", "insertsort", "k1", "45nm",
             "--baseline", "classic", "--budget", "30"]
        )
        assert code == 0
        assert "classic baseline" in capsys.readouterr().out


class TestUseCaseAndFigures:
    def test_usecase(self, capsys):
        assert main(["usecase", "bs", "k1", "45nm"]) == 0
        out = capsys.readouterr().out
        assert "WCET ratio" in out

    def test_figure3_small_grid(self, capsys):
        code = main(
            ["figure", "3", "--programs", "bs", "prime",
             "--configs", "k1", "--techs", "45nm", "--budget", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "paper 17.4%" in out

    def test_figure7_small_grid(self, capsys):
        code = main(
            ["figure", "7", "--programs", "bs",
             "--configs", "k1", "--techs", "32nm", "--budget", "20"]
        )
        assert code == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
