"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments import sweep as sweep_module


class TestListing:
    def test_list_programs(self, capsys):
        assert main(["list-programs"]) == 0
        out = capsys.readouterr().out
        assert "adpcm" in out and "whet" in out
        assert out.count("\n") == 37

    def test_list_configs(self, capsys):
        assert main(["list-configs"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 36
        assert "k36" in out

    def test_tables(self, capsys):
        assert main(["table", "1"]) == 0
        assert "p37" in capsys.readouterr().out
        assert main(["table", "2"]) == 0
        assert "(4, 32, 8192)" in capsys.readouterr().out


class TestOptimize:
    def test_optimize_reports_and_verifies(self, capsys):
        code = main(["optimize", "bs", "k1", "45nm", "--budget", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Theorem 1  : True" in out

    def test_optimize_by_table1_id(self, capsys):
        assert main(["optimize", "p2", "k1", "--budget", "10"]) == 0
        assert "bs" in capsys.readouterr().out

    def test_classic_baseline_flag(self, capsys):
        code = main(
            ["optimize", "insertsort", "k1", "45nm",
             "--baseline", "classic", "--budget", "30"]
        )
        assert code == 0
        assert "classic baseline" in capsys.readouterr().out


class TestUseCaseAndFigures:
    def test_usecase(self, capsys):
        assert main(["usecase", "bs", "k1", "45nm"]) == 0
        out = capsys.readouterr().out
        assert "WCET ratio" in out

    def test_figure3_small_grid(self, capsys):
        code = main(
            ["figure", "3", "--programs", "bs", "prime",
             "--configs", "k1", "--techs", "45nm", "--budget", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "paper 17.4%" in out

    def test_figure7_small_grid(self, capsys):
        code = main(
            ["figure", "7", "--programs", "bs",
             "--configs", "k1", "--techs", "32nm", "--budget", "20"]
        )
        assert code == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestSweepCommand:
    TINY = ["--programs", "bs", "prime", "--configs", "k1",
            "--techs", "45nm", "--budget", "10"]

    @pytest.fixture(autouse=True)
    def _clean_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        # each test sees a cold in-process cache
        monkeypatch.setattr(sweep_module, "_SWEEP_CACHE", {})

    def _case_lines(self, out):
        return [line for line in out.splitlines() if line.startswith("[")]

    def test_sweep_runs_and_summarises(self, capsys):
        assert main(["sweep", *self.TINY, "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "sweep: 2 use cases (2 computed" in out
        assert "workers: 1 (serial)" in out
        assert "average improvement" in out
        assert len(self._case_lines(out)) == 2

    def test_workers_1_and_2_agree_on_per_case_output(self, capsys):
        assert main(["sweep", *self.TINY, "--workers", "1", "--no-cache"]) == 0
        serial = self._case_lines(capsys.readouterr().out)
        assert main(["sweep", *self.TINY, "--workers", "2", "--no-cache"]) == 0
        parallel = self._case_lines(capsys.readouterr().out)
        assert serial == parallel
        assert len(serial) == 2

    def test_cache_dir_created_and_hit_on_rerun(self, capsys, tmp_path):
        cache_dir = tmp_path / "sweep-cache"
        args = ["sweep", *self.TINY, "--workers", "1",
                "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        capsys.readouterr()
        assert cache_dir.is_dir()
        assert list(cache_dir.glob("*/*.json"))
        # cold in-process cache, warm disk: everything served from disk
        sweep_module._SWEEP_CACHE.clear()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "(0 computed, 2 from disk cache" in out

    def test_no_cache_ignores_disk_and_memory(self, capsys, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "env"))
        assert main(["sweep", *self.TINY, "--workers", "1",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "2 computed, 0 from disk cache" in out
        assert not (tmp_path / "env").exists()

    def test_quiet_suppresses_per_case_lines(self, capsys):
        assert main(["sweep", *self.TINY, "--workers", "1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert self._case_lines(out) == []
        assert "sweep: 2 use cases" in out

    def test_flag_parsing_rejects_bad_workers(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--workers", "two"])


class TestJsonOutput:
    """``--json``: machine-readable stdout, human rendering on stderr."""

    @pytest.fixture(autouse=True)
    def _clean_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        monkeypatch.setattr(sweep_module, "_SWEEP_CACHE", {})

    def test_optimize_json_document(self, capsys):
        code = main(["optimize", "bs", "k1", "45nm",
                     "--budget", "10", "--json"])
        captured = capsys.readouterr()
        assert code == 0
        document = json.loads(captured.out)
        assert document["program"] == "bs"
        assert document["config_id"] == "k1"
        assert document["tech"] == "45nm"
        assert document["baseline"] == "persistence"
        assert document["guarantee"]["theorem1"] is True
        assert document["guarantee"]["latency_sound"] is True
        assert document["tau_final"] <= document["tau_original"]
        # the human rendering moved to stderr, wholesale
        assert "Theorem 1" in captured.err
        assert "Theorem 1" not in captured.out

    def test_sweep_json_document(self, capsys):
        code = main(["sweep", "--programs", "bs", "--configs", "k1",
                     "--techs", "45nm", "--budget", "10",
                     "--workers", "1", "--json"])
        captured = capsys.readouterr()
        assert code == 0
        document = json.loads(captured.out)
        assert document["summary"]["cases"] == 1
        assert document["cases"][0]["program"] == "bs"
        assert document["cases"][0]["wcet_ratio"] <= 1.0
        assert document["metrics"]["cases"] == 1
        assert "average improvement" in captured.err
        assert "average improvement" not in captured.out

    def test_json_stdout_is_a_single_parseable_line(self, capsys):
        assert main(["optimize", "bs", "k1", "--budget", "5",
                     "--json"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 1
        json.loads(out)

    def test_without_json_flag_stdout_is_human_only(self, capsys):
        assert main(["optimize", "bs", "k1", "--budget", "5"]) == 0
        captured = capsys.readouterr()
        assert "Theorem 1" in captured.out
        with pytest.raises(ValueError):
            json.loads(captured.out)
