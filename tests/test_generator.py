"""Tests for the parametric program generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import (
    branch_chain,
    loop_nest,
    random_program,
    recursion_as_loop,
    state_machine,
    switch_fan,
    unrolled_kernel,
)
from repro.errors import ProgramModelError
from repro.program.acfg import build_acfg
from repro.program.builder import ProgramBuilder
from repro.sim.executor import block_trace


class TestLoopNest:
    def test_depth_matches_bounds(self):
        b = ProgramBuilder("p")
        loop_nest(b, bounds=[3, 4, 5], body_size=2)
        cfg = b.build()
        assert len(cfg.loops) == 3
        depths = sorted(
            sum(1 for lp in cfg.loops.values() if name in lp.blocks)
            for name in (cfg.loops[min(cfg.loops)].header,)
        )
        assert depths[0] >= 1

    def test_empty_bounds_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(ProgramModelError):
            loop_nest(b, bounds=[], body_size=2)

    def test_sim_iterations_forwarded(self):
        b = ProgramBuilder("p")
        loop_nest(b, bounds=[6], body_size=2, sim_iterations=[4])
        cfg = b.build()
        assert next(iter(cfg.loops.values())).sim_iterations == 4

    def test_mismatched_sim_iterations_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(ProgramModelError):
            loop_nest(b, bounds=[3, 4], body_size=1, sim_iterations=[2])


class TestOtherGenerators:
    def test_branch_chain_emits_conditionals(self):
        b = ProgramBuilder("p")
        branch_chain(b, count=5, then_size=2, else_size=3)
        cfg = b.build()
        assert len(cfg.branch_profiles) == 5

    def test_branch_chain_validation(self):
        b = ProgramBuilder("p")
        with pytest.raises(ProgramModelError):
            branch_chain(b, count=0, then_size=1)

    def test_switch_fan_case_count(self):
        b = ProgramBuilder("p")
        switch_fan(b, cases=7, case_size=2)
        cfg = b.build()
        from repro.program.structure import SwitchNode, walk

        switches = [n for n in walk(cfg.structure) if isinstance(n, SwitchNode)]
        assert len(switches) == 1
        assert len(switches[0].cases) == 7

    def test_switch_fan_validation(self):
        b = ProgramBuilder("p")
        with pytest.raises(ProgramModelError):
            switch_fan(b, cases=0, case_size=1)

    def test_state_machine_runs(self):
        b = ProgramBuilder("p")
        state_machine(b, states=4, handler_size=5, steps_bound=6, varying=1)
        cfg = b.build()
        trace = list(block_trace(cfg, seed=1))
        assert trace

    def test_unrolled_kernel_is_straight_line(self):
        b = ProgramBuilder("p")
        unrolled_kernel(b, chunks=3, chunk_size=10)
        cfg = b.build()
        assert len(cfg.loops) == 0
        assert cfg.instruction_count == 30 + 3  # + entry/exit

    def test_recursion_as_loop_shape(self):
        b = ProgramBuilder("p")
        recursion_as_loop(b, depth_bound=8, sim_depth=5, pre_size=3, post_size=2)
        cfg = b.build()
        assert len(cfg.loops) == 2
        bounds = sorted(lp.bound for lp in cfg.loops.values())
        assert bounds == [8, 8]


class TestRandomProgram:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_always_valid_and_deterministic(self, seed):
        cfg_a = random_program(seed, target_size=60)
        cfg_b = random_program(seed, target_size=60)
        cfg_a.validate()
        assert [b.name for b in cfg_a.blocks] == [b.name for b in cfg_b.blocks]
        assert cfg_a.instruction_count == cfg_b.instruction_count

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_expandable_and_executable(self, seed):
        cfg = random_program(seed, target_size=50)
        acfg = build_acfg(cfg, block_size=16)
        acfg.validate()
        trace = list(block_trace(cfg, seed=0))
        assert trace

    def test_size_roughly_honoured(self):
        small = random_program(1, target_size=30)
        large = random_program(1, target_size=300)
        assert large.instruction_count > small.instruction_count

    def test_custom_name(self):
        assert random_program(3, name="custom").name == "custom"
