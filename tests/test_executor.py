"""Tests for the concrete structure-tree executor."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.program.builder import ProgramBuilder
from repro.sim.executor import Executor, block_trace


def names(cfg, seed=0, repeat=1):
    return [b.name for b in block_trace(cfg, seed=seed, repeat=repeat)]


class TestDeterminism:
    def test_same_seed_same_trace(self, loop_program):
        assert names(loop_program, seed=3) == names(loop_program, seed=3)

    def test_different_seed_may_differ_but_has_same_length_loops(self):
        b = ProgramBuilder("p")
        with b.loop(bound=10, sim_iterations=6):
            b.code(1)
        cfg = b.build()
        assert names(cfg, seed=1) == names(cfg, seed=2)  # no branches

    def test_rerun_resets_state(self, loop_program):
        executor = Executor(loop_program, seed=5)
        first = [b.name for b in executor.run()]
        second = [b.name for b in executor.run()]
        assert first == second


class TestLoops:
    def test_iteration_count(self):
        b = ProgramBuilder("p")
        with b.loop(bound=10, sim_iterations=7):
            b.block_label("body")
            b.code(1)
        cfg = b.build()
        trace = names(cfg)
        assert trace.count("body") == 7

    def test_nested_iteration_product(self):
        b = ProgramBuilder("p")
        with b.loop(bound=3, sim_iterations=3):
            with b.loop(bound=4, sim_iterations=4):
                b.block_label("inner")
                b.code(1)
        cfg = b.build()
        assert names(cfg).count("inner") == 12


class TestBranches:
    def test_pattern_branch_is_exactly_followed(self):
        b = ProgramBuilder("p")
        with b.loop(bound=6, sim_iterations=6):
            with b.if_else(pattern=[True, False, True]) as arms:
                with arms.then_():
                    b.block_label("then")
                    b.code(1)
                with arms.else_():
                    b.block_label("else")
                    b.code(1)
        cfg = b.build()
        trace = names(cfg)
        assert trace.count("then") == 4  # pattern T,F,T cycled over 6
        assert trace.count("else") == 2

    def test_probability_zero_and_one(self):
        b = ProgramBuilder("p")
        with b.loop(bound=8, sim_iterations=8):
            with b.if_else(taken_prob=1.0) as arms:
                with arms.then_():
                    b.block_label("always")
                    b.code(1)
                with arms.else_():
                    b.block_label("never")
                    b.code(1)
        cfg = b.build()
        trace = names(cfg)
        assert trace.count("always") == 8
        assert trace.count("never") == 0

    def test_missing_branch_profile_raises(self, loop_program):
        cond = next(iter(loop_program.branch_profiles))
        del loop_program.branch_profiles[cond]
        with pytest.raises(SimulationError):
            names(loop_program)


class TestSwitchesAndCalls:
    def test_exactly_one_case_per_visit(self):
        b = ProgramBuilder("p")
        with b.loop(bound=10, sim_iterations=10):
            with b.switch(weights=[1, 1]) as sw:
                with sw.case():
                    b.block_label("case0")
                    b.code(1)
                with sw.case():
                    b.block_label("case1")
                    b.code(1)
        cfg = b.build()
        trace = names(cfg, seed=9)
        assert trace.count("case0") + trace.count("case1") == 10

    def test_weighted_switch_prefers_heavy_case(self):
        b = ProgramBuilder("p")
        with b.loop(bound=60, sim_iterations=60):
            with b.switch(weights=[99, 1]) as sw:
                with sw.case():
                    b.block_label("hot")
                    b.code(1)
                with sw.case():
                    b.block_label("cold")
                    b.code(1)
        cfg = b.build()
        trace = names(cfg, seed=4)
        assert trace.count("hot") > trace.count("cold")

    def test_call_walks_function_body(self):
        b = ProgramBuilder("p")
        with b.function("f"):
            b.block_label("fbody")
            b.code(2)
        b.call("f")
        b.call("f")
        cfg = b.build()
        assert names(cfg).count("fbody") == 2


class TestTraceHelpers:
    def test_repeat_concatenates_runs(self, loop_program):
        single = len(names(loop_program, seed=1))
        double = len(names(loop_program, seed=1, repeat=2))
        assert double >= 2 * single - 5  # branch draws may differ per run

    def test_repeat_must_be_positive(self, loop_program):
        with pytest.raises(SimulationError):
            names(loop_program, repeat=0)

    def test_runaway_guard(self, monkeypatch):
        import repro.sim.executor as executor_module

        b = ProgramBuilder("p")
        with b.loop(bound=1000, sim_iterations=1000):
            b.code(1)
        cfg = b.build()
        monkeypatch.setattr(executor_module, "MAX_BLOCK_VISITS", 100)
        with pytest.raises(SimulationError):
            names(cfg)
