"""Tests for the WCET-path solvers: structural DP and the IPET ILP.

The key property is that both backends compute the same optimum on any
program the builder can produce — the repo's substitute for validating
against a reference IPET implementation.
"""

from __future__ import annotations

import pytest

from repro.analysis.ipet import edge_list, solve_ipet
from repro.analysis.structural import solve_wcet_path
from repro.bench.generator import random_program
from repro.errors import AnalysisError
from repro.program.acfg import build_acfg
from repro.program.builder import ProgramBuilder


def uniform_times(acfg, ref_time=2.0):
    return [
        ref_time if v.is_ref else 0.0 for v in acfg.iter_topological()
    ]


class TestStructuralSolver:
    def test_straight_line_count(self, straight_program):
        acfg = build_acfg(straight_program, block_size=16)
        solution = solve_wcet_path(acfg, uniform_times(acfg))
        # every reference executes once: objective = 2 * ref_count
        assert solution.objective == 2.0 * acfg.ref_count

    def test_loop_counts_weighted_by_bound(self):
        b = ProgramBuilder("p")
        with b.loop(bound=10):
            b.code(1)
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=16)
        solution = solve_wcet_path(acfg, uniform_times(acfg, 1.0))
        # entry(2) + exit(1) + body(3 instrs incl latch) x 10
        assert solution.objective == 2 + 1 + 3 * 10

    def test_branch_takes_worse_arm(self):
        b = ProgramBuilder("p")
        with b.if_else() as arms:
            with arms.then_():
                b.code(2)
            with arms.else_():
                b.code(9)
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=16)
        solution = solve_wcet_path(acfg, uniform_times(acfg, 1.0))
        # entry 2 + cond branch 1 + worse arm 9 + exit 1
        assert solution.objective == 2 + 1 + 9 + 1

    def test_switch_takes_largest_case(self):
        b = ProgramBuilder("p")
        with b.switch() as sw:
            for size in (1, 5, 3):
                with sw.case():
                    b.code(size)
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=16)
        solution = solve_wcet_path(acfg, uniform_times(acfg, 1.0))
        # entry 2 + selector 1 + (5 + break jump 1) + exit 1
        assert solution.objective == 2 + 1 + 6 + 1

    def test_nested_loop_multiplies_counts(self):
        b = ProgramBuilder("p")
        with b.loop(bound=3):
            with b.loop(bound=4):
                b.code(1)
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=16)
        solution = solve_wcet_path(acfg, uniform_times(acfg, 1.0))
        # inner body (1+2 latch) runs 3*4, inner... outer latch 2 runs 3
        assert solution.objective == 2 + 1 + 3 * (4 * 3 + 2)

    def test_path_is_contiguous(self, nested_program):
        acfg = build_acfg(nested_program, block_size=16)
        solution = solve_wcet_path(acfg, uniform_times(acfg))
        for a, b2 in zip(solution.path, solution.path[1:]):
            assert b2 in acfg.successors(a)

    def test_counts_zero_off_path(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        solution = solve_wcet_path(acfg, uniform_times(acfg))
        for rid in range(len(acfg.vertices)):
            if not solution.on_path[rid]:
                assert solution.n_w[rid] == 0

    def test_time_vector_length_checked(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        with pytest.raises(AnalysisError):
            solve_wcet_path(acfg, [1.0])


class TestILPBackend:
    def test_edge_list_covers_all_edges(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        edges = edge_list(acfg)
        assert len(edges) == sum(
            len(acfg.successors(rid)) for rid in range(len(acfg.vertices))
        )

    def test_flow_is_single_path(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        solution = solve_ipet(acfg, uniform_times(acfg))
        edges = edge_list(acfg)
        out_flow = {}
        for idx, (src, _) in enumerate(edges):
            out_flow[src] = out_flow.get(src, 0) + solution.edge_flow[idx]
        assert out_flow[acfg.source] == 1

    def test_time_vector_length_checked(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        with pytest.raises(AnalysisError):
            solve_ipet(acfg, [0.0])


class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_structural_equals_ilp_on_random_programs(self, seed):
        cfg = random_program(seed + 500, target_size=70)
        acfg = build_acfg(cfg, block_size=16)
        # non-uniform weights to exercise arm selection
        times = [
            (1.0 + (v.rid % 7)) if v.is_ref else 0.0
            for v in acfg.iter_topological()
        ]
        structural = solve_wcet_path(acfg, times)
        ilp = solve_ipet(acfg, times)
        assert structural.objective == pytest.approx(ilp.objective)

    @pytest.mark.parametrize("seed", range(5))
    def test_equivalence_with_fixture_programs(
        self, seed, loop_program, nested_program
    ):
        for cfg in (loop_program, nested_program):
            acfg = build_acfg(cfg, block_size=16)
            times = [
                (seed + 1.0) if v.is_ref else 0.0
                for v in acfg.iter_topological()
            ]
            assert solve_wcet_path(acfg, times).objective == pytest.approx(
                solve_ipet(acfg, times).objective
            )
