"""Tests for the sweep's failure isolation, retries and pool recovery.

The contract under test: one failing use case becomes a
:class:`FailureRecord` while every other case completes; transient
faults are retried with exponential backoff; a broken process pool is
rebuilt exactly once per break with only the lost in-flight cases
requeued; and the ``max_failures`` policy decides whether a partial
sweep raises :class:`SweepFailure`.  All scenarios are driven by the
deterministic fault-injection layer (:mod:`repro.experiments.faults`).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError, SweepFailure
from repro.experiments import faults
from repro.experiments import sweep as sweep_mod
from repro.experiments.cache import result_to_dict
from repro.experiments.faults import (
    CORRUPT_MARKER,
    FAULT_PLAN_ENV,
    FaultSpec,
    SimulatedFault,
    parse_fault_plan,
    set_fault_hook,
)
from repro.experiments.metrics import SweepMetrics
from repro.experiments.report import (
    failure_to_json,
    metrics_to_json,
    sweep_to_json,
)
from repro.experiments.sweep import FailureRecord, SweepSpec, run_sweep

#: Two fast programs, one config, one tech: 2 use cases per sweep.
TINY_SPEC = SweepSpec(
    programs=("bs", "prime"),
    config_ids=("k1",),
    techs=("45nm",),
    seed=1,
    max_evaluations=10,
)

#: The fault-plan key of the first grid case.
BS_KEY = "bs/k1/45nm"


def _fault_on(program: str, spec: FaultSpec):
    """A hook injecting ``spec`` for one program's use cases."""

    def hook(usecase, attempt):
        return spec if usecase.program == program else None

    return hook


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """No ambient plan/hook/caches leak into (or out of) any test."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_SWEEP_CACHE_MAX_BYTES", raising=False)
    faults._cached_plan.cache_clear()
    set_fault_hook(None)
    yield
    set_fault_hook(None)
    faults._cached_plan.cache_clear()


@pytest.fixture(scope="module")
def reference_results():
    """The fault-free serial run everything is compared against."""
    return run_sweep(TINY_SPEC, use_cache=False, workers=1)


# ----------------------------------------------------------------------
# the fault-injection layer itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = parse_fault_plan(
            '{"bs/k1/45nm": {"kind": "transient", "attempts": [1, 2]},'
            ' "*": {"kind": "hang", "seconds": 1.5}}'
        )
        assert plan[BS_KEY] == FaultSpec("transient", (1, 2))
        assert plan["*"] == FaultSpec("hang", (1,), 1.5)
        assert plan[BS_KEY].fires_on(2)
        assert not plan[BS_KEY].fires_on(3)

    @pytest.mark.parametrize("text,needle", [
        ("{not json", "valid JSON"),
        ('["list"]', "JSON object"),
        ('{"k": "crash"}', "must be an object"),
        ('{"k": {"kind": "explode"}}', "kind"),
        ('{"k": {"kind": "crash", "attempts": []}}', "attempts"),
        ('{"k": {"kind": "crash", "attempts": [0]}}', "attempts"),
        ('{"k": {"kind": "hang", "seconds": -1}}', "seconds"),
    ])
    def test_bad_plans_raise_config_error(self, text, needle):
        with pytest.raises(ConfigError, match=needle):
            parse_fault_plan(text)

    def test_env_plan_matches_key_then_wildcard(self, monkeypatch):
        monkeypatch.setenv(
            FAULT_PLAN_ENV,
            '{"bs/k1/45nm": {"kind": "crash"}, "*": {"kind": "transient"}}',
        )
        cases = TINY_SPEC.usecases()
        bs = next(u for u in cases if u.program == "bs")
        prime = next(u for u in cases if u.program == "prime")
        assert faults.active_fault(bs, 1).kind == "crash"
        assert faults.active_fault(prime, 1).kind == "transient"
        assert faults.active_fault(bs, 2) is None  # attempts default [1]

    def test_hook_wins_over_env_plan(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, '{"*": {"kind": "transient"}}')
        set_fault_hook(lambda usecase, attempt: FaultSpec("crash"))
        usecase = TINY_SPEC.usecases()[0]
        assert faults.active_fault(usecase, 1).kind == "crash"

    def test_inject_before_raises_the_right_family(self):
        usecase = TINY_SPEC.usecases()[0]
        set_fault_hook(_fault_on("bs", FaultSpec("crash")))
        with pytest.raises(SimulatedFault):
            faults.inject_before(usecase, 1)
        set_fault_hook(_fault_on("bs", FaultSpec("transient")))
        with pytest.raises(OSError):
            faults.inject_before(usecase, 1)


# ----------------------------------------------------------------------
# failure isolation (serial path, deterministic hook)
# ----------------------------------------------------------------------
class TestFailureIsolation:
    def test_crash_isolates_to_one_failure_record(self, reference_results):
        set_fault_hook(_fault_on("bs", FaultSpec("crash")))
        metrics = SweepMetrics()
        seen = []
        results = run_sweep(
            TINY_SPEC,
            progress=lambda uc, r: seen.append(uc.program),
            use_cache=False,
            workers=1,
            metrics=metrics,
            max_failures=None,
        )
        # the other case completed, bit-identically to the reference
        assert [r.usecase.program for r in results] == ["prime"]
        assert result_to_dict(results[0]) == result_to_dict(
            reference_results[1]
        )
        # progress fired for the success only, without stalling
        assert seen == ["prime"]
        assert metrics.failed == 1
        record = metrics.failures[0]
        assert isinstance(record, FailureRecord)
        assert record.usecase.program == "bs"
        assert record.index == 0
        assert record.error_type == "SimulatedFault"
        assert "injected crash" in record.message
        assert record.attempts == 1       # deterministic: never retried
        assert record.transient is False
        assert record.worker_pid != 0
        assert metrics.retries == 0

    def test_default_policy_raises_sweep_failure(self):
        set_fault_hook(_fault_on("bs", FaultSpec("crash")))
        with pytest.raises(SweepFailure) as info:
            run_sweep(TINY_SPEC, use_cache=False, workers=1)
        assert len(info.value.failures) == 1
        assert info.value.failures[0].error_type == "SimulatedFault"
        # the grid still ran to completion: partial results are carried
        assert [r.usecase.program for r in info.value.results] == ["prime"]
        assert "1 of 2 use cases failed" in str(info.value)

    def test_max_failures_tolerates_the_budget(self):
        set_fault_hook(_fault_on("bs", FaultSpec("crash")))
        results = run_sweep(
            TINY_SPEC, use_cache=False, workers=1, max_failures=1
        )
        assert len(results) == 1

    def test_partial_sweep_never_poisons_the_memory_cache(self):
        set_fault_hook(_fault_on("bs", FaultSpec("crash")))
        with pytest.raises(SweepFailure):
            run_sweep(TINY_SPEC, use_cache=True, workers=1)
        set_fault_hook(None)
        # the rerun must recompute, not serve a partial grid from memory
        results = run_sweep(TINY_SPEC, use_cache=True, workers=1)
        assert len(results) == TINY_SPEC.size

    def test_completed_cases_stay_disk_cached_across_a_failure(
        self, tmp_path
    ):
        set_fault_hook(_fault_on("bs", FaultSpec("crash")))
        metrics = SweepMetrics()
        run_sweep(
            TINY_SPEC, use_cache=False, workers=1, cache_dir=tmp_path,
            metrics=metrics, max_failures=None,
        )
        assert metrics.computed == 1
        set_fault_hook(None)
        # the rerun recomputes only the failed case
        metrics2 = SweepMetrics()
        results = run_sweep(
            TINY_SPEC, use_cache=False, workers=1, cache_dir=tmp_path,
            metrics=metrics2,
        )
        assert len(results) == TINY_SPEC.size
        assert metrics2.disk_hits == 1
        assert metrics2.computed == 1


# ----------------------------------------------------------------------
# transient retries with backoff (serial path)
# ----------------------------------------------------------------------
class TestTransientRetries:
    def test_transient_fault_retries_with_exponential_backoff(
        self, monkeypatch, reference_results
    ):
        set_fault_hook(
            _fault_on("bs", FaultSpec("transient", attempts=(1, 2)))
        )
        delays = []
        monkeypatch.setattr(sweep_mod, "_sleep", delays.append)
        metrics = SweepMetrics()
        results = run_sweep(
            TINY_SPEC, use_cache=False, workers=1, metrics=metrics,
            max_attempts=3, backoff_base_s=0.01,
        )
        # succeeded on attempt 3; both cases present and bit-identical
        assert len(results) == TINY_SPEC.size
        assert [result_to_dict(r) for r in results] == [
            result_to_dict(r) for r in reference_results
        ]
        assert metrics.retries == 2
        assert metrics.failed == 0
        assert delays == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_exhausted_retry_budget_becomes_a_transient_failure(
        self, monkeypatch
    ):
        set_fault_hook(
            _fault_on("bs", FaultSpec("transient", attempts=(1, 2, 3)))
        )
        monkeypatch.setattr(sweep_mod, "_sleep", lambda s: None)
        metrics = SweepMetrics()
        run_sweep(
            TINY_SPEC, use_cache=False, workers=1, metrics=metrics,
            max_attempts=3, max_failures=None,
        )
        assert metrics.retries == 2
        record = metrics.failures[0]
        assert record.error_type == "OSError"
        assert record.attempts == 3
        assert record.transient is True

    def test_corrupt_fault_poisons_the_result_not_the_sweep(self):
        set_fault_hook(_fault_on("bs", FaultSpec("corrupt")))
        metrics = SweepMetrics()
        results = run_sweep(
            TINY_SPEC, use_cache=False, workers=1, metrics=metrics,
        )
        # no exception anywhere: the result is wrong, detectably
        assert metrics.failed == 0
        assert results[0].optimized.tau_w == CORRUPT_MARKER
        assert results[1].optimized.tau_w != CORRUPT_MARKER


# ----------------------------------------------------------------------
# pool recovery (parallel path, environment plan crosses into workers)
# ----------------------------------------------------------------------
class TestPoolRecovery:
    def _run_parallel(self, monkeypatch, plan, **kwargs):
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(plan))
        metrics = SweepMetrics()
        results = run_sweep(
            TINY_SPEC, use_cache=False, workers=2, metrics=metrics,
            backoff_base_s=0.01, **kwargs,
        )
        if not metrics.parallel:
            pytest.skip("platform cannot run a process pool")
        return results, metrics

    def test_worker_death_rebuilds_the_pool_once(
        self, monkeypatch, reference_results
    ):
        results, metrics = self._run_parallel(
            monkeypatch,
            {BS_KEY: {"kind": "exit", "attempts": [1]}},
        )
        # one break event -> exactly one rebuild; the killed case was
        # requeued and the full grid completed bit-identically
        assert metrics.pool_rebuilds == 1
        assert metrics.retries >= 1
        assert metrics.failed == 0
        assert [result_to_dict(r) for r in results] == [
            result_to_dict(r) for r in reference_results
        ]

    def test_worker_crash_isolates_in_the_pool_too(
        self, monkeypatch, reference_results
    ):
        results, metrics = self._run_parallel(
            monkeypatch,
            {BS_KEY: {"kind": "crash", "attempts": [1]}},
            max_failures=None,
        )
        # a deterministic exception does not break the pool
        assert metrics.pool_rebuilds == 0
        assert metrics.failed == 1
        assert metrics.failures[0].error_type == "SimulatedFault"
        assert metrics.failures[0].worker_pid != 0
        assert [result_to_dict(r) for r in results] == [
            result_to_dict(reference_results[1])
        ]

    def test_hung_case_is_abandoned_and_retried(
        self, monkeypatch, reference_results
    ):
        results, metrics = self._run_parallel(
            monkeypatch,
            {BS_KEY: {"kind": "hang", "seconds": 2.0, "attempts": [1]}},
            case_timeout_s=0.3,
        )
        assert metrics.retries >= 1
        assert metrics.failed == 0
        assert [result_to_dict(r) for r in results] == [
            result_to_dict(r) for r in reference_results
        ]


# ----------------------------------------------------------------------
# reporting: failures in metrics/JSON documents
# ----------------------------------------------------------------------
class TestFailureReporting:
    def _failed_sweep(self):
        set_fault_hook(_fault_on("bs", FaultSpec("crash")))
        metrics = SweepMetrics()
        results = run_sweep(
            TINY_SPEC, use_cache=False, workers=1, metrics=metrics,
            max_failures=None,
        )
        return results, metrics

    def test_failure_record_serialises(self):
        _, metrics = self._failed_sweep()
        doc = failure_to_json(metrics.failures[0])
        assert doc == {
            "program": "bs",
            "config": "k1",
            "tech": "45nm",
            "error_type": "SimulatedFault",
            "message": doc["message"],
            "attempts": 1,
            "worker_pid": doc["worker_pid"],
            "transient": False,
        }
        assert "injected crash" in doc["message"]

    def test_metrics_json_carries_the_fault_counters(self):
        _, metrics = self._failed_sweep()
        doc = metrics_to_json(metrics)
        assert doc["failed"] == 1
        assert doc["retries"] == 0
        assert doc["pool_rebuilds"] == 0
        assert len(doc["failures"]) == 1
        assert doc["failures"][0]["error_type"] == "SimulatedFault"

    def test_sweep_json_reports_partial_results(self):
        results, metrics = self._failed_sweep()
        doc = sweep_to_json(results, metrics=metrics,
                            failures=metrics.failures)
        assert doc["summary"]["cases"] == 1
        assert doc["summary"]["failed"] == 1
        assert doc["failures"][0]["program"] == "bs"
        assert doc["metrics"]["failed"] == 1
        # a fault-free document keeps the old shape plus failed=0
        clean = sweep_to_json(results)
        assert clean["summary"]["failed"] == 0
        assert "failures" not in clean

    def test_summary_text_names_the_failed_case(self):
        _, metrics = self._failed_sweep()
        text = metrics.summary()
        assert "faults: 1 failed" in text
        assert "FAILED bs/k1/45nm: SimulatedFault" in text


# ----------------------------------------------------------------------
# CLI policy flag
# ----------------------------------------------------------------------
class TestSweepCLI:
    CLI = ["sweep", "--programs", "bs", "prime", "--configs", "k1",
           "--techs", "45nm", "--budget", "10", "--workers", "1",
           "--no-cache", "--quiet", "--json"]

    def test_failures_flip_the_exit_code(self, capsys):
        from repro.cli import main

        set_fault_hook(_fault_on("bs", FaultSpec("crash")))
        assert main(list(self.CLI)) == 1  # default --max-failures 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert doc["summary"]["failed"] == 1
        assert doc["failures"][0]["program"] == "bs"
        assert "failed permanently" in captured.err

    def test_max_failures_flag_tolerates_the_budget(self, capsys):
        from repro.cli import main

        set_fault_hook(_fault_on("bs", FaultSpec("crash")))
        assert main(list(self.CLI) + ["--max-failures", "1"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["failed"] == 1
        assert doc["summary"]["cases"] == 1

    def test_fault_free_run_exits_zero(self, capsys):
        from repro.cli import main

        assert main(list(self.CLI)) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["failed"] == 0
        assert doc["summary"]["cases"] == 2
