"""Unit tests for the abstract instruction model."""

from __future__ import annotations

import pytest

from repro.program.instructions import (
    INSTRUCTION_SIZE,
    Instruction,
    InstructionFactory,
    InstrKind,
)


class TestInstructionFactory:
    def test_uids_are_unique_and_sequential(self):
        factory = InstructionFactory()
        instrs = [factory.normal() for _ in range(10)]
        assert [i.uid for i in instrs] == list(range(10))

    def test_start_uid_offset(self):
        factory = InstructionFactory(start_uid=100)
        assert factory.normal().uid == 100
        assert factory.next_uid == 101

    def test_kind_helpers(self):
        factory = InstructionFactory()
        assert factory.normal().kind is InstrKind.NORMAL
        assert factory.branch().kind is InstrKind.BRANCH
        assert factory.jump().kind is InstrKind.JUMP

    def test_prefetch_records_target(self):
        factory = InstructionFactory()
        target = factory.normal()
        prefetch = factory.prefetch(target.uid)
        assert prefetch.is_prefetch
        assert prefetch.prefetch_target == target.uid


class TestInstruction:
    def test_default_size_is_four_bytes(self):
        assert INSTRUCTION_SIZE == 4
        assert InstructionFactory().normal().size == 4

    def test_identity_by_uid(self):
        a = Instruction(uid=1)
        b = Instruction(uid=1, kind=InstrKind.BRANCH)
        c = Instruction(uid=2)
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_equality_against_other_types(self):
        assert Instruction(uid=1) != "not an instruction"

    def test_is_control_covers_transfer_kinds(self):
        factory = InstructionFactory()
        assert factory.branch().is_control
        assert factory.jump().is_control
        assert factory.make(InstrKind.CALL).is_control
        assert factory.make(InstrKind.RETURN).is_control
        assert not factory.normal().is_control
        assert not factory.prefetch(0).is_control

    def test_non_prefetch_has_no_target(self):
        assert InstructionFactory().normal().prefetch_target is None
