"""Multi-level memory hierarchy (L1/L2 + DRAM) across every layer.

The hierarchy refactor's contract has two halves, and both are tested
here:

* **bit-identity** — a single-level hierarchy is not a special case but
  the *same* computation the pre-hierarchy code ran: timing models,
  WCET bounds, use-case keys and sweep grids must come out identical
  with ``l2=None``;
* **soundness** — when a second level exists, the abstract multi-level
  classification (Hardy & Puaut style: the L2 access stream is the L1
  stream filtered by the L1 classification) must never be optimistic
  against a concrete two-level LRU simulation, and the WCET bound must
  dominate the one-level bound's structure (an L2-guaranteed reference
  is charged the L2 service time, never less).

A deterministic slice runs in tier-1; wide sweeps are ``slow``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.bench.generator import random_program
from repro.cache.classify import analyze_cache
from repro.cache.concrete import ConcreteCache
from repro.cache.config import (
    CacheConfig,
    CacheLevel,
    HierarchyConfig,
    TABLE2,
    hierarchy_for,
    parse_l2_spec,
)
from repro.analysis.timing import TimingModel
from repro.analysis.wcet import analyze_wcet, prefetch_lambda
from repro.energy.cacti import cacti_l2_model, cacti_model, hierarchy_model
from repro.energy.technology import TECH_45NM
from repro.errors import (
    AnalysisError,
    CacheConfigError,
    ProtocolError,
    SimulationError,
)
from repro.program.acfg import build_acfg
from repro.program.builder import ProgramBuilder
from repro.program.layout import AddressLayout
from repro.sim.executor import block_trace
from repro.sim.machine import MemorySystem, simulate

#: The L2 point the acceptance sweep uses: 4-way, 16 B blocks, 4 KiB,
#: 6-cycle service time.
L2_SPEC = "4:16:4096:6"


# ----------------------------------------------------------------------
# configuration layer
# ----------------------------------------------------------------------
class TestHierarchyConfig:
    def test_parse_l2_spec_round_trip(self):
        level = parse_l2_spec(L2_SPEC)
        assert level.config == CacheConfig(4, 16, 4096)
        assert level.latency_cycles == 6
        assert level.label() == "(4, 16, 4096)@6"

    @pytest.mark.parametrize("spec", ("4:16:4096", "4:16:4096:6:1", "a:b:c:d"))
    def test_parse_l2_spec_rejects_malformed(self, spec):
        with pytest.raises(CacheConfigError):
            parse_l2_spec(spec)

    def test_single_level_hierarchy(self):
        config = TABLE2["k1"]
        hierarchy = hierarchy_for(config)
        assert not hierarchy.multi_level
        assert hierarchy.l1 == config
        assert hierarchy.l2_level is None
        # the label degenerates to the L1 label: reports stay unchanged
        assert hierarchy.label() == config.label()

    def test_two_level_hierarchy(self):
        config = TABLE2["k1"]
        hierarchy = hierarchy_for(config, L2_SPEC)
        assert hierarchy.multi_level
        assert hierarchy.l2_level == parse_l2_spec(L2_SPEC)
        assert hierarchy.label() == f"{config.label()} | (4, 16, 4096)@6"

    def test_levels_must_share_block_size(self):
        with pytest.raises(CacheConfigError):
            HierarchyConfig((
                CacheLevel(CacheConfig(1, 16, 256), 1),
                CacheLevel(CacheConfig(4, 32, 4096), 6),
            ))

    def test_capacities_must_not_shrink(self):
        with pytest.raises(CacheConfigError):
            HierarchyConfig((
                CacheLevel(CacheConfig(1, 16, 1024), 1),
                CacheLevel(CacheConfig(4, 16, 256), 6),
            ))

    def test_hierarchy_needs_a_level_and_positive_latency(self):
        with pytest.raises(CacheConfigError):
            HierarchyConfig(())
        with pytest.raises(CacheConfigError):
            CacheLevel(CacheConfig(1, 16, 256), 0)


# ----------------------------------------------------------------------
# timing / energy models
# ----------------------------------------------------------------------
class TestHierarchyTiming:
    def test_single_level_timing_bit_identical(self):
        """hierarchy_model on a single level is exactly the legacy
        cacti_model timing — the refactor's central no-op guarantee."""
        for config_id in ("k1", "k15", "k36"):
            config = TABLE2[config_id]
            legacy = cacti_model(config, TECH_45NM).timing_model()
            threaded = hierarchy_model(
                hierarchy_for(config), TECH_45NM
            ).timing
            assert threaded == legacy
            assert threaded.l2_hit_penalty_cycles is None

    def test_two_level_timing_composition(self):
        config = TABLE2["k1"]
        model = hierarchy_model(hierarchy_for(config, L2_SPEC), TECH_45NM)
        l2 = cacti_l2_model(CacheConfig(4, 16, 4096), TECH_45NM)
        timing = model.timing
        assert timing.l2_hit_penalty_cycles == 6
        # full miss = L2 probe leg + L2-to-DRAM refill leg
        assert timing.miss_penalty_cycles == 6 + l2.miss_penalty_cycles
        assert timing.l2_hit_cycles == timing.hit_cycles + 6

    def test_l2_hit_penalty_validation(self):
        with pytest.raises(AnalysisError):
            TimingModel(1, 30, 1, l2_hit_penalty_cycles=0)
        with pytest.raises(AnalysisError):  # L2 service >= DRAM service
            TimingModel(1, 30, 1, l2_hit_penalty_cycles=30)
        with pytest.raises(AnalysisError):  # property needs a second level
            _ = TimingModel(1, 30, 1).l2_hit_cycles


# ----------------------------------------------------------------------
# concrete two-level simulator
# ----------------------------------------------------------------------
@pytest.fixture
def l2_timing() -> TimingModel:
    return TimingModel(
        hit_cycles=1, miss_penalty_cycles=30, prefetch_issue_cycles=1,
        l2_hit_penalty_cycles=6,
    )


class TestTwoLevelMachine:
    L1 = CacheConfig(1, 16, 64)      # 4 sets, conflict heavy
    L2 = CacheConfig(4, 16, 1024)

    def _system(self, l2_timing):
        return MemorySystem(self.L1, l2_timing, l2_config=self.L2)

    def test_l2_requires_a_two_level_timing_model(self, timing):
        with pytest.raises(SimulationError):
            MemorySystem(self.L1, timing, l2_config=self.L2)

    def test_l2_must_share_the_block_size(self, l2_timing):
        with pytest.raises(SimulationError):
            MemorySystem(self.L1, l2_timing,
                         l2_config=CacheConfig(4, 32, 1024))

    def test_cold_miss_fills_both_levels(self, l2_timing):
        system = self._system(l2_timing)
        assert system.fetch(0) == l2_timing.miss_cycles
        r = system.result
        assert (r.demand_misses, r.l2_accesses, r.l2_hits, r.l2_fills) == (
            1, 1, 0, 1)

    def test_l1_victim_is_served_by_l2(self, l2_timing):
        system = self._system(l2_timing)
        system.fetch(0)        # block 0 -> L1 + L2
        system.fetch(64)       # same L1 set: evicts block 0 from L1
        cycles = system.fetch(0)
        assert cycles == l2_timing.l2_hit_cycles
        assert system.result.l2_hits == 1
        # the L2 transfer never reached DRAM
        counts = system.result.event_counts()
        assert counts.dram_transfers == counts.demand_misses - 1

    def test_l1_hit_never_probes_l2(self, l2_timing):
        system = self._system(l2_timing)
        system.fetch(0)
        system.fetch(4)        # same block: L1 hit
        assert system.result.l2_accesses == 1  # only the cold miss

    def test_prefetch_served_from_l2_is_faster(self, l2_timing):
        system = self._system(l2_timing)
        system.fetch(0)        # warm block 0 into both levels
        system.fetch(64)       # evict it from L1 (stays in L2)
        assert system.issue_prefetch(0) is True
        assert system.result.prefetch_l2_hits == 1
        # the transfer completes after the L2 penalty, not Λ
        system.fetch(64)       # one L1 hit: 1 cycle < 6 remain
        remaining = l2_timing.l2_hit_penalty_cycles - 1
        cycles = system.fetch(0)
        assert cycles == l2_timing.hit_cycles + remaining

    def test_prefetch_from_dram_installs_into_l2_on_arrival(self, l2_timing):
        system = self._system(l2_timing)
        assert system.issue_prefetch(9) is True
        assert system.result.prefetch_l2_hits == 0
        for _ in range(l2_timing.prefetch_latency + 1):
            system.fetch(0)
        assert system.result.l2_fills >= 2  # block 0's miss + the arrival
        system.fetch(64)              # evict block 9's set-mate? no: warm L2
        # after eviction from L1 the prefetched block still sits in L2
        system.fetch(9 * 16 + 64)     # evict block 9 from its L1 set
        assert system.fetch(9 * 16) == l2_timing.l2_hit_cycles

    def test_simulate_results_validate(self, l2_timing):
        cfg = random_program(7, target_size=80)
        result = simulate(cfg, self.L1, l2_timing, l2_config=self.L2)
        result.validate()
        assert result.l2_accesses > 0
        assert result.l2_hits <= result.l2_accesses
        counts = result.event_counts()
        assert counts.l2_accesses == result.l2_accesses
        assert counts.dram_transfers == (
            result.demand_misses + result.prefetch_transfers - result.l2_hits
        )

    def test_single_level_run_unchanged_by_two_level_timing(self, timing,
                                                            l2_timing):
        """Without an L2 the richer timing model must not perturb the
        simulation: same cycles, same counters as the legacy model."""
        cfg = random_program(3, target_size=80)
        legacy = simulate(cfg, self.L1, timing)
        plain = simulate(cfg, self.L1, l2_timing)
        assert plain.memory_cycles == legacy.memory_cycles
        assert plain.demand_misses == legacy.demand_misses
        assert plain.l2_accesses == 0


# ----------------------------------------------------------------------
# abstract multi-level analysis vs. the concrete two-level machine
# ----------------------------------------------------------------------
#: Small conflicty L1s under a larger L2 — the regime where L2-hit
#: classification has something to prove.
HIERARCHIES = tuple(
    hierarchy_for(l1, spec)
    for l1, spec in (
        (CacheConfig(1, 16, 256), "4:16:2048:6"),
        (CacheConfig(2, 16, 128), "4:16:1024:8"),
        (CacheConfig(1, 16, 64), L2_SPEC),
    )
)


def _two_level_outcomes(cfg, hierarchy, seed):
    """Replay one concrete run through an L1+L2 pair.

    Yields ``(uid, l1_hit, l2_hit)`` per dynamic fetch; ``l2_hit`` is
    ``None`` when L1 already served the fetch.
    """
    l1_config = hierarchy.l1
    l2_config = hierarchy.l2_level.config
    layout = AddressLayout(cfg)
    l1 = ConcreteCache(l1_config)
    l2 = ConcreteCache(l2_config)
    for block in block_trace(cfg, seed=seed):
        for instr in block.instructions:
            mem_block = l1_config.block_of_address(layout.address(instr.uid))
            l1_hit = l1.access(mem_block)
            l2_hit = None if l1_hit else l2.access(mem_block)
            yield instr.uid, l1_hit, l2_hit


def _assert_l2_classification_never_optimistic(program_seed, hierarchy,
                                               run_seeds):
    cfg = random_program(program_seed, target_size=90)
    acfg = build_acfg(cfg, block_size=hierarchy.l1.block_size)
    analysis = analyze_cache(acfg, hierarchy.l1, hierarchy=hierarchy)
    assert analysis.l2_hits is not None
    # a uid is L2-guaranteed only when *every* context of it is
    guaranteed_rids = analysis.l2_hits
    per_uid: dict = {}
    for vertex in acfg.ref_vertices():
        per_uid.setdefault(vertex.instr.uid, []).append(
            vertex.rid in guaranteed_rids
        )
    guaranteed_uids = {
        uid for uid, flags in per_uid.items() if all(flags)
    }
    for run_seed in run_seeds:
        for uid, l1_hit, l2_hit in _two_level_outcomes(
            cfg, hierarchy, run_seed
        ):
            if uid in guaranteed_uids and not l1_hit:
                assert l2_hit, (
                    f"L2-guaranteed uid {uid} reached DRAM concretely "
                    f"(program seed {program_seed}, {hierarchy.label()})"
                )
    return guaranteed_uids


def _thrash_program(body_instructions=60, iterations=10):
    """A single top-level loop whose body overflows a small L1.

    The working set (~16 blocks for the default size) thrashes a 4-set
    L1 every iteration but fits comfortably in every test L2, so the
    REST-context references are exactly the regime where the
    multi-level analysis must prove L2 residency.
    """
    b = ProgramBuilder("l2-thrash")
    b.code(4)
    with b.loop(bound=iterations + 2, sim_iterations=iterations):
        b.code(body_instructions)
    b.code(2)
    return b.build()


def _assert_per_context_l2_claims_hold(cfg, hierarchy, run_seeds):
    """Check every per-context L2-hit claim against concrete replays.

    Only valid for single-top-level-loop programs (asserted below):
    there, the *k*-th dynamic occurrence of a uid is governed by its
    FIRST context when ``k == 1`` and its REST context otherwise, so
    each claimed rid can be confronted with exactly the fetches it
    speaks for.  Returns the number of L2-guaranteed rids so callers
    can assert the check was not vacuous.
    """
    acfg = build_acfg(cfg, block_size=hierarchy.l1.block_size)
    analysis = analyze_cache(acfg, hierarchy.l1, hierarchy=hierarchy)
    assert analysis.l2_hits is not None
    contexts_of: dict = {}
    for vertex in acfg.ref_vertices():
        kinds = tuple(el.kind for el in vertex.context)
        assert kinds in ((), ("F",), ("R",)), (
            "the occurrence-to-context mapping needs a single flat loop"
        )
        contexts_of.setdefault(vertex.instr.uid, {})[kinds] = vertex.rid
    for run_seed in run_seeds:
        occurrences: dict = {}
        for uid, l1_hit, l2_hit in _two_level_outcomes(
            cfg, hierarchy, run_seed
        ):
            occurrences[uid] = occurrences.get(uid, 0) + 1
            by_ctx = contexts_of[uid]
            if len(by_ctx) == 1:
                rid = next(iter(by_ctx.values()))
            elif occurrences[uid] == 1:
                rid = by_ctx[("F",)]
            else:
                rid = by_ctx[("R",)]
            if rid in analysis.l2_hits and not l1_hit:
                assert l2_hit, (
                    f"rid {rid} (uid {uid}, occurrence {occurrences[uid]}) "
                    f"claimed L2-guaranteed but reached DRAM "
                    f"({hierarchy.label()})"
                )
    return len(analysis.l2_hits)


class TestMultiLevelDeterministic:
    @pytest.mark.parametrize(
        "hierarchy", HIERARCHIES, ids=lambda h: h.label())
    @pytest.mark.parametrize("program_seed", (3, 17))
    def test_l2_guarantees_sound_on_generated_programs(
        self, program_seed, hierarchy
    ):
        _assert_l2_classification_never_optimistic(
            program_seed, hierarchy, run_seeds=(0, 1)
        )

    @pytest.mark.parametrize(
        "hierarchy", HIERARCHIES[1:], ids=lambda h: h.label())
    def test_per_context_l2_claims_sound_on_thrashing_loop(self, hierarchy):
        """Every per-context L2-hit claim survives concrete replay on a
        loop that thrashes L1 (where such claims actually exist)."""
        _assert_per_context_l2_claims_hold(
            _thrash_program(), hierarchy, run_seeds=(0, 1)
        )

    def test_analysis_proves_some_l2_hits(self):
        """Meaningfulness guard: on a conflicty L1 under a roomy L2 the
        multi-level analysis must actually prove L2 residency somewhere
        (otherwise the soundness assertions above test nothing).  The
        REST contexts of an L1-thrashing loop are the canonical case:
        iteration one definitely misses L1 (filling L2), so from
        iteration two on every leading reference is an L1 miss served
        by the L2 must state."""
        found = _assert_per_context_l2_claims_hold(
            _thrash_program(), HIERARCHIES[2], run_seeds=()
        )
        assert found > 0

    def test_l2_charging_strictly_tightens_on_thrashing_loop(self):
        """On the thrashing loop the two-level bound must be strictly
        below the single-level bound: REST-context always-misses are
        charged the L2 service time instead of the DRAM round trip."""
        hierarchy = HIERARCHIES[2]
        timing_two = hierarchy_model(hierarchy, TECH_45NM).timing
        timing_one = TimingModel(
            hit_cycles=timing_two.hit_cycles,
            miss_penalty_cycles=timing_two.miss_penalty_cycles,
            prefetch_issue_cycles=timing_two.prefetch_issue_cycles,
        )
        cfg = _thrash_program()
        acfg = build_acfg(cfg, block_size=hierarchy.l1.block_size)
        one = analyze_wcet(acfg, hierarchy.l1, timing_one)
        two = analyze_wcet(acfg, hierarchy.l1, timing_two,
                           hierarchy=hierarchy)
        assert two.tau_w < one.tau_w
        assert two.wcet_path_l2_hits > 0
        assert two.wcet_path_misses == one.wcet_path_misses

    def test_l2_charging_tightens_but_never_undercuts_concrete(self):
        """τ_w of the two-level analysis is at most the single-level
        bound (L2 hits replace DRAM charges) and never below the L1
        hit-everything floor."""
        hierarchy = HIERARCHIES[0]
        timing_two = hierarchy_model(hierarchy, TECH_45NM).timing
        # same DRAM distance, no second level
        timing_one = TimingModel(
            hit_cycles=timing_two.hit_cycles,
            miss_penalty_cycles=timing_two.miss_penalty_cycles,
            prefetch_issue_cycles=timing_two.prefetch_issue_cycles,
        )
        for seed in (3, 17):
            cfg = random_program(seed, target_size=90)
            acfg = build_acfg(cfg, block_size=hierarchy.l1.block_size)
            one = analyze_wcet(acfg, hierarchy.l1, timing_one)
            two = analyze_wcet(acfg, hierarchy.l1, timing_two,
                               hierarchy=hierarchy)
            assert two.tau_w <= one.tau_w
            assert two.wcet_path_misses == one.wcet_path_misses

    def test_single_level_hierarchy_is_a_no_op(self):
        """Threading an explicit one-level hierarchy changes nothing —
        the bit-identity half of the contract at the analysis layer."""
        config = CacheConfig(1, 16, 256)
        timing = TimingModel(1, 30, 1)
        cfg = random_program(11, target_size=90)
        acfg = build_acfg(cfg, block_size=config.block_size)
        plain = analyze_wcet(acfg, config, timing)
        threaded = analyze_wcet(acfg, config, timing,
                                hierarchy=hierarchy_for(config))
        assert threaded.tau_w == plain.tau_w
        assert threaded.t_w == plain.t_w
        assert threaded.wcet_path_l2_hits == 0

    def test_prefetch_lambda_shrinks_for_l2_resident_targets(self):
        """prefetch_lambda returns Λ for DRAM-distance targets and the
        L2 penalty when the L2 must-state pins the target."""
        hierarchy = HIERARCHIES[0]
        timing = hierarchy_model(hierarchy, TECH_45NM).timing
        cfg = random_program(3, target_size=90)
        acfg = build_acfg(cfg, block_size=hierarchy.l1.block_size)
        wcet = analyze_wcet(acfg, hierarchy.l1, timing, hierarchy=hierarchy)
        lambdas = {
            prefetch_lambda(wcet.cache, timing, v.rid, acfg.block_of(v.rid))
            for v in acfg.ref_vertices()
        }
        assert lambdas <= {timing.prefetch_latency,
                           timing.l2_hit_penalty_cycles}


# ----------------------------------------------------------------------
# golden corpus: pinned multi-level states, reproduced by both kernels
# ----------------------------------------------------------------------
HIERARCHY_GOLDEN_DIR = Path(__file__).parent / "data" / "hierarchy_golden"


def serialize_hierarchy_analysis(acfg, analysis) -> str:
    """Canonical rendering of a multi-level analysis.

    Classifications, the L2-guaranteed rid set and every L2 must
    fixpoint state; both kernels must reproduce it byte for byte (the
    L2 plan is derived from the kernel-independent classifications and
    may states, so the whole document is kernel-independent too).
    """
    from tests.test_kernel_equivalence import _state_repr

    lines = ["[classifications]"]
    for rid in range(len(acfg.vertices)):
        cls = analysis.classifications[rid]
        lines.append(f"{rid} {cls.name if cls is not None else '-'}")
    lines.append("[l2-hits]")
    lines.append(",".join(map(str, sorted(analysis.l2_hits))))
    for direction in ("in", "out"):
        lines.append(f"[l2-must.{direction}]")
        states = (
            analysis.l2_must.in_states if direction == "in"
            else analysis.l2_must.out_states
        )
        for rid in range(len(acfg.vertices)):
            lines.append(f"{rid} {_state_repr(states[rid])}")
    return "\n".join(lines) + "\n"


def _hierarchy_golden_files():
    return sorted(HIERARCHY_GOLDEN_DIR.glob("*.json"))


def _analyze_golden_point(document, kernel):
    from repro.bench.registry import load

    config = TABLE2[document["config"]]
    acfg = build_acfg(load(document["program"]), config.block_size, 0)
    hierarchy = hierarchy_for(config, document["l2"])
    return acfg, analyze_cache(
        acfg, config, hierarchy=hierarchy, kernel=kernel
    )


class TestHierarchyGoldenCorpus:
    def test_corpus_not_empty(self):
        assert _hierarchy_golden_files(), (
            f"no golden states under {HIERARCHY_GOLDEN_DIR}"
        )

    @pytest.mark.parametrize(
        "path", _hierarchy_golden_files(), ids=lambda p: p.stem
    )
    @pytest.mark.parametrize("kernel", ("python", "vectorized"))
    def test_kernel_reproduces_golden_multi_level_states(self, path, kernel):
        document = json.loads(path.read_text())
        acfg, analysis = _analyze_golden_point(document, kernel)
        payload = serialize_hierarchy_analysis(acfg, analysis)
        digest = hashlib.sha256(payload.encode()).hexdigest()
        assert digest == document["sha256"], (
            f"{kernel} kernel diverged from golden corpus {path.name}"
        )
        assert payload == document["payload"]


# ----------------------------------------------------------------------
# the hierarchy as a grid axis: sweep, CLI, protocol, fabric
# ----------------------------------------------------------------------
class TestHierarchyProtocol:
    def test_fabric_sweep_accepts_the_l2_axis(self):
        from repro.service.protocol import parse_fabric_sweep

        _, params = parse_fabric_sweep({"params": dict(
            programs=["bs"], configs=["k1"], techs=["45nm"],
            budget=10, l2=[L2_SPEC],
        )})
        assert params["l2"] == [L2_SPEC]

    @pytest.mark.parametrize("bad", ("4:16", "4:16:4096:0", 7, []))
    def test_bad_l2_specs_are_rejected(self, bad):
        from repro.service.protocol import parse_fabric_sweep

        with pytest.raises(ProtocolError, match="l2"):
            parse_fabric_sweep({"params": {"l2": bad if bad == []
                                           else [bad]}})

    def test_fingerprints_without_l2_stay_pre_hierarchy_stable(self):
        """The canonical form only gains an ``l2`` key when the axis is
        requested — omitting it must hash exactly like a submission
        from before the hierarchy existed."""
        from repro.service.protocol import parse_job

        base = parse_job({"kind": "sweep",
                          "params": {"programs": ["bs"]}})
        assert "l2" not in dict(base.params)
        with_l2 = parse_job({"kind": "sweep",
                             "params": {"programs": ["bs"],
                                        "l2": [L2_SPEC]}})
        assert base.fingerprint() != with_l2.fingerprint()

    def test_shard_cases_round_trip_l2_quadruples(self):
        from repro.service.protocol import parse_job

        req = parse_job({"kind": "shard", "params": {"cases": [
            ["bs", "k1", "45nm", L2_SPEC],
            ["bs", "k1", "45nm", None],
            ["bs", "k1", "45nm"],
        ]}})
        cases = req.param("cases")
        assert cases[0] == ("bs", "k1", "45nm", L2_SPEC)
        # a null L2 normalises to the triple: same shard fingerprint
        # as a pre-hierarchy submission
        assert cases[1] == cases[2] == ("bs", "k1", "45nm")


class TestHierarchySweep:
    @pytest.fixture(autouse=True)
    def _cold_cache(self, monkeypatch):
        from repro.experiments import sweep as sweep_module

        monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
        monkeypatch.setattr(sweep_module, "_SWEEP_CACHE", {})

    def test_l2_axis_expands_innermost_with_per_level_json(self):
        from repro.experiments.report import sweep_case_to_json
        from repro.experiments.sweep import SweepSpec, run_sweep

        spec = SweepSpec(
            programs=("bs",), config_ids=("k1",), techs=("45nm",),
            max_evaluations=10, l2_specs=(None, L2_SPEC),
        )
        cases = spec.usecases()
        assert [c.l2 for c in cases] == [None, L2_SPEC]
        results = run_sweep(spec, use_cache=False, workers=1)
        single, multi = (sweep_case_to_json(r) for r in results)
        assert "l2" not in single
        assert multi["l2"] == L2_SPEC
        assert multi["l2_hit_penalty_cycles"] == 6
        for side in ("l2_original", "l2_optimized"):
            level = multi[side]
            assert level["hits"] <= level["accesses"]
            assert level["dynamic_j"] > 0
            assert level["static_j"] > 0
        # the single-level half of the grid is the pre-hierarchy doc
        assert single["program"] == multi["program"] == "bs"

    @pytest.mark.slow
    def test_acceptance_grid_runs_end_to_end(self):
        """The acceptance sweep: bs/crc/ndes x k1/k15 x one L2 point,
        with per-level energy in every case document."""
        from repro.experiments.report import sweep_to_json
        from repro.experiments.sweep import SweepSpec, run_sweep

        spec = SweepSpec(
            programs=("bs", "crc", "ndes"), config_ids=("k1", "k15"),
            techs=("45nm",), max_evaluations=10, l2_specs=(L2_SPEC,),
        )
        results = run_sweep(spec, use_cache=False)
        document = sweep_to_json(results)
        assert document["summary"]["cases"] == 6
        for case in document["cases"]:
            assert case["l2"] == L2_SPEC
            assert case["l2_optimized"]["dynamic_j"] > 0


class TestHierarchyCLI:
    @pytest.fixture(autouse=True)
    def _cold_cache(self, monkeypatch):
        from repro.experiments import sweep as sweep_module

        monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
        monkeypatch.setattr(sweep_module, "_SWEEP_CACHE", {})

    def test_sweep_l2_flag_reaches_the_json_document(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--programs", "bs", "--configs", "k1",
                     "--techs", "45nm", "--budget", "10",
                     "--l2", L2_SPEC, "--workers", "1", "--no-cache",
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert [c["l2"] for c in document["cases"]] == [L2_SPEC]
        assert document["cases"][0]["l2_hit_penalty_cycles"] == 6

    def test_optimize_reports_the_hierarchy(self, capsys):
        from repro.cli import main

        assert main(["optimize", "bs", "k1", "45nm", "--budget", "10",
                     "--l2", L2_SPEC]) == 0
        out = capsys.readouterr().out
        assert "(4, 16, 4096)@6" in out

    def test_usecase_prints_the_l2_hit_rate(self, capsys):
        from repro.cli import main

        assert main(["usecase", "bs", "k1", "45nm",
                     "--l2", L2_SPEC]) == 0
        out = capsys.readouterr().out
        assert "L2 hit rate" in out


class TestHierarchyFabric:
    def test_fabric_l2_sweep_matches_local_run_bit_for_bit(self, tmp_path):
        from repro.experiments.report import sweep_to_json
        from repro.experiments.sweep import SweepSpec, run_sweep
        from repro.service.app import BackgroundServer
        from repro.service.client import ServiceClient

        with BackgroundServer(cache_dir=tmp_path / "fleet",
                              workers=1) as worker:
            with BackgroundServer(coordinator=True,
                                  worker_urls=[worker.url]) as coord:
                client = ServiceClient(coord.host, coord.port)
                record = client.submit_fabric_sweep(
                    programs=["bs"], configs=["k1"], techs=["45nm"],
                    budget=10, l2=[L2_SPEC],
                )
                document = client.fabric_result(record["id"])
        assert document["summary"]["failed"] == 0
        assert [c["l2"] for c in document["cases"]] == [L2_SPEC]
        local = run_sweep(
            SweepSpec(programs=("bs",), config_ids=("k1",),
                      techs=("45nm",), max_evaluations=10,
                      kernel="vectorized", l2_specs=(L2_SPEC,)),
            use_cache=False, workers=1,
        )
        assert document["cases"] == sweep_to_json(local)["cases"]


@pytest.mark.slow
class TestMultiLevelPropertyBased:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=20, deadline=None)
    @given(
        program_seed=st.integers(min_value=0, max_value=10_000),
        hierarchy=st.sampled_from(HIERARCHIES),
    )
    def test_l2_guarantees_sound_across_hierarchies(
        self, program_seed, hierarchy
    ):
        _assert_l2_classification_never_optimistic(
            program_seed, hierarchy, run_seeds=(0, 1, 2)
        )
