"""Tracing smoke test: one trace across a real coordinator fleet.

The distributed-tracing contract in one scenario: a coordinator with
two workers runs a multi-shard sweep carrying a client-generated
``traceparent``, with a transient fault injected on one case so the
worker-side retry machinery fires.  The single trace id must then be
retrievable from the coordinator with spans covering submit → sweep →
dispatch → worker job → pool → shard execution → pipeline stages —
including the retry annotation — and export as valid Chrome-trace JSON.

Slow tier (CI ``tracing-smoke`` job, which uploads the exported
Chrome-trace document as a build artifact via ``REPRO_TRACE_EXPORT``).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.export import render_span_tree, to_chrome_trace
from repro.obs.trace import (
    SpanContext,
    format_traceparent,
    new_span_id,
    new_trace_id,
)
from repro.service.app import BackgroundServer
from repro.service.client import ServiceClient

GRID = dict(programs=["bs", "prime"], configs=["k1"], techs=["45nm"],
            budget=10)

#: First attempt of bs/k1/45nm raises the retriable OSError family —
#: the worker's serial driver backs off, retries, succeeds.
TRANSIENT_ONCE = json.dumps(
    {"bs/k1/45nm": {"kind": "transient", "attempts": [1]}}
)


@pytest.mark.slow
class TestTracingSmoke:
    def test_one_trace_covers_the_whole_fleet(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", TRANSIENT_ONCE)
        monkeypatch.delenv("REPRO_SWEEP_CACHE_MAX_BYTES", raising=False)

        cache = tmp_path / "fleet-cache"
        worker_a = BackgroundServer(cache_dir=cache, workers=1,
                                    service_name="worker-a").start()
        worker_b = BackgroundServer(cache_dir=cache, workers=1,
                                    service_name="worker-b").start()
        coord = BackgroundServer(
            coordinator=True,
            worker_urls=[worker_a.url, worker_b.url],
            shard_size=1,  # one case per shard: both workers see work
            cache_dir="off",
            service_name="coordinator",
        ).start()
        try:
            client = ServiceClient(coord.host, coord.port)

            # Head sampling at the client: we pick the trace id, the
            # fleet joins it.
            trace_id = new_trace_id()
            traceparent = format_traceparent(
                SpanContext(trace_id, new_span_id(), True)
            )
            record = client.submit_fabric_sweep(
                traceparent=traceparent, **GRID
            )
            assert record["cases"] == 2
            events = list(client.stream_sweep(record["id"]))
            assert events[-1][0] == "done"
            document = client.fabric_result(record["id"])
            assert document["summary"]["failed"] == 0

            trace = client.trace(trace_id)
            spans = trace["spans"]
            assert spans, "coordinator returned an empty trace"
            assert all(s["trace_id"] == trace_id for s in spans)

            names = {s["name"] for s in spans}
            services = {s["service"] for s in spans}

            # Coordinator side: the submit request, the sweep, and one
            # dispatch per shard.
            assert any(n.startswith("http POST") for n in names)
            assert "fabric.sweep" in names
            dispatches = [s for s in spans
                          if s["name"] == "fabric.dispatch"]
            assert len(dispatches) >= 2
            assert {s["attributes"]["worker"] for s in dispatches} <= {
                worker_a.url, worker_b.url}

            # Worker side, merged across nodes: job acceptance, the
            # pool round-trip, shard execution, and pipeline stages.
            assert "job" in names
            assert "pool.execute" in names
            assert "shard.execute" in names
            assert any(n.startswith("pipeline.") for n in names)
            assert "coordinator" in services
            assert services & {"worker-a", "worker-b"}
            assert "pool" in services

            # Every span chains back to the trace root: parent ids
            # resolve within the trace (the submit request's parent is
            # the client's synthetic root span, absent by design).
            ids = {s["span_id"] for s in spans}
            orphans = [s for s in spans
                       if s["parent_id"] and s["parent_id"] not in ids]
            assert len(orphans) <= 1, f"broken chains: {orphans}"

            # The injected transient fault shows up as a retry
            # annotation on the shard execution span.
            shard_spans = [s for s in spans
                           if s["name"] == "shard.execute"]
            retried = [e for s in shard_spans
                       for e in s.get("events", [])
                       if e["name"] == "retry"]
            assert retried, "injected transient left no retry event"

            # The tree renders with every tier visible.
            tree = render_span_tree(spans)
            assert "fabric.sweep" in tree
            assert "shard.execute" in tree

            # Export: a valid, loadable Chrome-trace document with one
            # process per service.  CI uploads it as an artifact.
            chrome = to_chrome_trace(spans)
            encoded = json.dumps(chrome)
            parsed = json.loads(encoded)
            assert parsed["displayTimeUnit"] == "ms"
            process_names = {e["args"]["name"]
                             for e in parsed["traceEvents"]
                             if e["ph"] == "M"}
            assert {"coordinator", "pool"} <= process_names
            assert all(e["dur"] >= 0 for e in parsed["traceEvents"]
                       if e["ph"] == "X")

            export_path = os.environ.get("REPRO_TRACE_EXPORT")
            if export_path:
                with open(export_path, "w", encoding="utf-8") as handle:
                    handle.write(encoded)
        finally:
            coord.stop()
            worker_a.stop()
            worker_b.stop()
