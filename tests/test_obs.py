"""Tests for the observability subsystem (``repro.obs``).

Five layers:

* traceparent — W3C parse/format round-trips and malformed-header
  tolerance (a bad header must start an untraced request, not fail it);
* spans and tracers — the three-tier span model (recording / timed /
  no-op), context propagation, and head sampling;
* collection — aggregate folding in :class:`SpanCollector` and the
  :class:`TraceStore` ring buffer;
* export — Chrome-trace JSON validity and the terminal span tree;
* service integration — latency histograms derived from job spans,
  fleet ``/metrics`` worker labels, and ``GET /v1/traces/<id>``.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.export import render_span_tree, sort_spans, to_chrome_trace
from repro.obs.log import StructuredLogger, set_level
from repro.obs.store import TraceStore
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    SpanCollector,
    SpanContext,
    Tracer,
    activate_tracer,
    current_context,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    use_span,
)
from repro.service.app import BackgroundServer
from repro.service.client import ServiceClient
from repro.service.telemetry import ServiceTelemetry, merge_expositions

TRACE = "4bf92f3577b34da6a3ce929d0e0e4736"
SPAN = "00f067aa0ba902b7"


@pytest.fixture(autouse=True)
def _no_ambient_config(monkeypatch):
    monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_SWEEP_CACHE_MAX_BYTES", raising=False)
    monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)


# ----------------------------------------------------------------------
# traceparent
# ----------------------------------------------------------------------
class TestTraceparent:
    def test_round_trip_sampled(self):
        ctx = SpanContext(TRACE, SPAN, True)
        header = format_traceparent(ctx)
        assert header == f"00-{TRACE}-{SPAN}-01"
        back = parse_traceparent(header)
        assert back.trace_id == TRACE
        assert back.span_id == SPAN
        assert back.sampled is True

    def test_round_trip_unsampled(self):
        header = format_traceparent(SpanContext(TRACE, SPAN, False))
        assert header.endswith("-00")
        back = parse_traceparent(header)
        assert back is not None
        assert back.sampled is False

    def test_fresh_ids_round_trip(self):
        ctx = SpanContext(new_trace_id(), new_span_id(), True)
        back = parse_traceparent(format_traceparent(ctx))
        assert (back.trace_id, back.span_id) == (ctx.trace_id, ctx.span_id)

    def test_surrounding_whitespace_is_tolerated(self):
        assert parse_traceparent(f"  00-{TRACE}-{SPAN}-01\n") is not None

    @pytest.mark.parametrize("header", [
        None,
        "",
        42,
        "00",
        f"00-{TRACE}-{SPAN}",  # three parts
        f"00-{TRACE}-{SPAN}-01-extra",  # five parts
        f"0-{TRACE}-{SPAN}-01",  # short version
        f"ff-{TRACE}-{SPAN}-01",  # forbidden version
        f"zz-{TRACE}-{SPAN}-01",  # non-hex version
        f"00-{TRACE[:-1]}-{SPAN}-01",  # 31-char trace id
        f"00-{TRACE}x-{SPAN}-01",  # 33-char trace id
        f"00-{TRACE}-{SPAN[:-1]}-01",  # 15-char span id
        f"00-{'g' * 32}-{SPAN}-01",  # non-hex trace id
        f"00-{TRACE}-{'g' * 16}-01",  # non-hex span id
        f"00-{'0' * 32}-{SPAN}-01",  # all-zero trace id
        f"00-{TRACE}-{'0' * 16}-01",  # all-zero span id
        f"00-{TRACE}-{SPAN}-0",  # short flags
        f"00-{TRACE}-{SPAN}-xx",  # non-hex flags
    ])
    def test_malformed_headers_parse_to_none(self, header):
        assert parse_traceparent(header) is None

    @pytest.mark.parametrize("flags,sampled", [
        ("01", True), ("00", False), ("03", True), ("02", False),
    ])
    def test_sampled_is_the_low_flag_bit(self, flags, sampled):
        ctx = parse_traceparent(f"00-{TRACE}-{SPAN}-{flags}")
        assert ctx.sampled is sampled


# ----------------------------------------------------------------------
# spans and tracers
# ----------------------------------------------------------------------
class TestTracerTiers:
    def test_disabled_tracer_hands_out_the_noop_singleton(self):
        tracer = Tracer(service="t")
        assert tracer.start_span("x") is NOOP_SPAN
        assert tracer.start_span("x", root=True) is NOOP_SPAN
        assert not tracer.enabled

    def test_sink_without_sampling_stays_noop(self):
        tracer = Tracer(service="t", sample=0.0, sink=lambda s: None)
        assert tracer.start_span("x", root=True) is NOOP_SPAN

    def test_timed_span_records_duration_without_identity(self):
        tracer = Tracer(service="t")
        span = tracer.start_span("stage", timed=True)
        assert span is not NOOP_SPAN
        assert span.recording is False
        assert span.context is None
        span.end()
        assert span.duration_s >= 0.0
        assert span.ended

    def test_root_sampling_creates_a_recording_span(self):
        sunk = []
        tracer = Tracer(service="t", sample=1.0, sink=sunk.append)
        span = tracer.start_span("root", root=True)
        assert span.recording
        assert len(span.context.trace_id) == 32
        assert len(span.context.span_id) == 16
        assert span.parent_id is None
        assert span.service == "t"
        span.end()
        assert sunk == [span]
        span.end()  # idempotent: the sink fires exactly once
        assert sunk == [span]

    def test_sampling_rate_consults_the_rng(self):
        rolls = iter([0.9, 0.1])
        tracer = Tracer(service="t", sample=0.5, sink=lambda s: None,
                        rng=lambda: next(rolls))
        assert tracer.start_span("a", root=True) is NOOP_SPAN
        assert tracer.start_span("b", root=True).recording

    def test_children_inherit_the_trace_through_the_context(self):
        tracer = Tracer(service="t", sample=1.0, sink=lambda s: None)
        with tracer.start_span("parent", root=True) as parent:
            child = tracer.start_span("child")
            assert child.context.trace_id == parent.context.trace_id
            assert child.parent_id == parent.context.span_id
            assert current_context().span_id == parent.context.span_id
        assert current_context() is None

    def test_explicit_parent_context_joins_a_remote_trace(self):
        tracer = Tracer(service="t", sample=1.0, sink=lambda s: None)
        remote = parse_traceparent(f"00-{TRACE}-{SPAN}-01")
        span = tracer.start_span("local", parent=remote)
        assert span.context.trace_id == TRACE
        assert span.parent_id == SPAN
        assert span.context.span_id != SPAN

    def test_unsampled_upstream_decision_is_respected(self):
        tracer = Tracer(service="t", sample=1.0, sink=lambda s: None)
        remote = parse_traceparent(f"00-{TRACE}-{SPAN}-00")
        assert tracer.start_span("local", parent=remote) is NOOP_SPAN

    def test_use_span_sets_the_ambient_parent_without_ending(self):
        tracer = Tracer(service="t", sample=1.0, sink=lambda s: None)
        span = tracer.start_span("job", root=True)
        with use_span(span):
            assert current_context().span_id == span.context.span_id
        assert current_context() is None
        assert not span.ended  # use_span never ends the span

    def test_exception_marks_error_status(self):
        tracer = Tracer(service="t", sample=1.0, sink=lambda s: None)
        span = tracer.start_span("boom", root=True)
        with pytest.raises(ValueError):
            with span:
                raise ValueError("nope")
        assert span.status == "error"
        assert "nope" in span.status_message
        assert span.ended

    def test_event_offsets_are_monotonic_from_span_start(self):
        span = Span("s", context=SpanContext(TRACE, SPAN))
        span.add_event("first", detail=1)
        span.add_event("second")
        span.end()
        first = span.event_offset("first")
        assert 0.0 <= first <= span.event_offset("second")
        assert span.event_offset("missing") is None
        assert span.event_offset("missing", 7.0) == 7.0

    def test_to_json_carries_the_full_span(self):
        span = Span("s", context=SpanContext(TRACE, SPAN),
                    parent_id="a" * 16, service="svc",
                    attributes={"k": 1})
        span.add_event("retry", attempt=2)
        span.set_status("error", "bad")
        span.end()
        doc = span.to_json()
        assert doc["name"] == "s"
        assert doc["trace_id"] == TRACE
        assert doc["span_id"] == SPAN
        assert doc["parent_id"] == "a" * 16
        assert doc["service"] == "svc"
        assert doc["status"] == "error"
        assert doc["status_message"] == "bad"
        assert doc["attributes"] == {"k": 1}
        assert doc["events"][0]["name"] == "retry"
        assert doc["events"][0]["attributes"] == {"attempt": 2}
        json.dumps(doc)  # must be JSON-serialisable as-is


# ----------------------------------------------------------------------
# collection: SpanCollector + TraceStore
# ----------------------------------------------------------------------
def _doc(name="s", trace=TRACE, span=None, parent=None, service="svc",
         start=1000.0, duration=0.5, **extra):
    doc = {
        "name": name,
        "trace_id": trace,
        "span_id": span if span is not None else new_span_id(),
        "parent_id": parent,
        "service": service,
        "start_unix_s": start,
        "duration_s": duration,
        "status": "ok",
    }
    doc.update(extra)
    return doc


class TestSpanCollector:
    def test_aggregate_spans_fold_by_parent_and_name(self):
        collector = SpanCollector()
        for _ in range(3):
            collector.add_json(_doc(
                name="pipeline.fixpoint", parent=SPAN, aggregate=True,
                count=1, duration=0.25, attributes={"hits": 2},
            ))
        spans = collector.drain()
        assert len(spans) == 1
        folded = spans[0]
        assert folded["count"] == 3
        assert folded["duration_s"] == pytest.approx(0.75)
        assert folded["attributes"]["hits"] == 6

    def test_plain_spans_append_until_the_limit(self):
        collector = SpanCollector(limit=2)
        for _ in range(4):
            collector.add_json(_doc())
        assert len(collector.drain()) == 2
        assert collector.dropped == 2

    def test_drain_resets_the_aggregate_index(self):
        collector = SpanCollector()
        collector.add_json(_doc(name="agg", aggregate=True, count=1))
        assert len(collector.drain()) == 1
        collector.add_json(_doc(name="agg", aggregate=True, count=1))
        assert collector.drain()[0]["count"] == 1


class TestTraceStore:
    def test_round_trips_spans_by_trace_id(self):
        store = TraceStore()
        store.add(_doc(span="a" * 16))
        store.add(_doc(trace="f" * 32, span="b" * 16))
        spans = store.get(TRACE)
        assert [s["span_id"] for s in spans] == ["a" * 16]
        assert store.get("f" * 32)[0]["span_id"] == "b" * 16
        assert store.get("0" * 32) is None
        assert set(store.trace_ids()) == {TRACE, "f" * 32}

    def test_returned_spans_are_copies(self):
        store = TraceStore()
        store.add(_doc(span="a" * 16))
        store.get(TRACE)[0]["name"] = "clobbered"
        assert store.get(TRACE)[0]["name"] == "s"

    def test_aggregates_fold_within_a_trace(self):
        store = TraceStore()
        for _ in range(2):
            store.add(_doc(name="pipeline.acfg", parent=SPAN,
                           aggregate=True, count=1, duration=0.1))
        spans = store.get(TRACE)
        assert len(spans) == 1
        assert spans[0]["count"] == 2
        assert spans[0]["duration_s"] == pytest.approx(0.2)

    def test_ring_evicts_the_oldest_trace(self):
        store = TraceStore(max_traces=2)
        first, second, third = ("1" * 32), ("2" * 32), ("3" * 32)
        for trace in (first, second, third):
            store.add(_doc(trace=trace))
        assert store.get(first) is None
        assert store.get(second) is not None
        assert store.get(third) is not None

    def test_span_cap_bounds_one_trace(self):
        store = TraceStore(max_spans=3)
        for _ in range(5):
            store.add(_doc())
        assert len(store.get(TRACE)) == 3
        assert store.stats()["dropped"] == 2

    def test_sink_adapts_span_objects(self):
        store = TraceStore()
        span = Span("s", context=SpanContext(TRACE, SPAN), service="svc")
        span.end()
        store.sink(span)
        assert store.get(TRACE)[0]["name"] == "s"


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
class TestChromeExport:
    def _tiny_trace(self):
        root = _doc(name="http POST /v1/jobs", span="a" * 16,
                    service="coordinator", start=100.0, duration=2.0)
        child = _doc(name="fabric.dispatch", span="b" * 16,
                     parent="a" * 16, service="coordinator",
                     start=100.5, duration=1.0,
                     events=[{"name": "retry", "offset_s": 0.25,
                              "attributes": {"attempt": 2}}])
        remote = _doc(name="shard.execute", span="c" * 16,
                      parent="b" * 16, service="pool",
                      start=100.6, duration=0.8)
        return [root, child, remote]

    def test_chrome_trace_shape_and_units(self):
        doc = to_chrome_trace(self._tiny_trace())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} == {"coordinator", "pool"}
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        root = next(e for e in complete if e["name"] == "http POST /v1/jobs")
        assert root["ts"] == pytest.approx(100.0 * 1e6)
        assert root["dur"] == pytest.approx(2.0 * 1e6)
        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["name"] == "retry"
        assert instants[0]["ts"] == pytest.approx((100.5 + 0.25) * 1e6)
        json.dumps(doc)  # a valid JSON document end to end

    def test_services_get_distinct_pids_and_children_share_lanes(self):
        doc = to_chrome_trace(self._tiny_trace())
        complete = {e["name"]: e for e in doc["traceEvents"]
                    if e["ph"] == "X"}
        assert (complete["http POST /v1/jobs"]["pid"]
                != complete["shard.execute"]["pid"])
        assert (complete["fabric.dispatch"]["tid"]
                == complete["http POST /v1/jobs"]["tid"])

    def test_overlapping_roots_take_separate_lanes(self):
        a = _doc(name="a", span="a" * 16, start=10.0, duration=5.0)
        b = _doc(name="b", span="b" * 16, start=12.0, duration=5.0)
        c = _doc(name="c", span="c" * 16, start=20.0, duration=1.0)
        complete = {e["name"]: e
                    for e in to_chrome_trace([a, b, c])["traceEvents"]
                    if e["ph"] == "X"}
        assert complete["a"]["tid"] != complete["b"]["tid"]
        assert complete["c"]["tid"] == complete["a"]["tid"]  # reused

    def test_span_tree_renders_nesting_and_annotations(self):
        tree = render_span_tree(self._tiny_trace())
        lines = tree.splitlines()
        assert lines[0].startswith("http POST /v1/jobs")
        assert any("fabric.dispatch" in l and "<retry>" in l
                   for l in lines)
        dispatch_line = next(l for l in lines if "fabric.dispatch" in l)
        shard_line = next(l for l in lines if "shard.execute" in l)
        assert lines.index(shard_line) > lines.index(dispatch_line)
        assert shard_line.startswith(("   ", "|  "))  # nested deeper

    def test_sort_spans_orders_by_wall_start(self):
        spans = [_doc(name="late", start=2.0), _doc(name="early", start=1.0)]
        assert [s["name"] for s in sort_spans(spans)] == ["early", "late"]


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------
class TestStructuredLog:
    def test_log_lines_are_json_with_trace_correlation(self):
        buffer = io.StringIO()
        logger = StructuredLogger("test.logger", stream=buffer)
        tracer = Tracer(service="t", sample=1.0, sink=lambda s: None)
        with tracer.start_span("op", root=True) as span:
            logger.info("hello", shard="s1")
        record = json.loads(buffer.getvalue())
        assert record["level"] == "info"
        assert record["logger"] == "test.logger"
        assert record["msg"] == "hello"
        assert record["shard"] == "s1"
        assert record["trace_id"] == span.context.trace_id
        assert record["span_id"] == span.context.span_id

    def test_level_threshold_filters_and_off_silences(self):
        buffer = io.StringIO()
        logger = StructuredLogger("test.logger", stream=buffer)
        try:
            set_level("warn")
            logger.info("dropped")
            logger.warning("kept")
            set_level("off")
            logger.error("also dropped")
        finally:
            set_level("info")
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["msg"] == "kept"

    def test_unserialisable_fields_fall_back_to_str(self):
        buffer = io.StringIO()
        logger = StructuredLogger("test.logger", stream=buffer)
        logger.info("x", obj=object())
        record = json.loads(buffer.getvalue())
        assert "object object" in record["obj"]


# ----------------------------------------------------------------------
# telemetry: span-derived histograms + fleet merge labels
# ----------------------------------------------------------------------
class TestJobSpanTelemetry:
    def _span(self):
        return Span("job", context=SpanContext(TRACE, SPAN))

    def test_started_event_splits_wait_from_execution(self):
        telemetry = ServiceTelemetry()
        span = self._span()
        span.events.append(("started", 2.0, {}))
        span._end_mono = span._start_mono + 5.0
        telemetry.record_job_span(span)
        text = telemetry.render()
        assert "job_queue_wait_seconds_count 1" in text
        assert "job_execution_seconds_count 1" in text
        assert "job_queue_wait_seconds_sum 2" in text
        assert "job_execution_seconds_sum 3" in text
        assert "job_latency_seconds_count 1" in text
        assert "job_latency_seconds_sum 5" in text

    def test_undispatched_job_observes_queue_wait_only(self):
        telemetry = ServiceTelemetry()
        span = self._span()
        span._end_mono = span._start_mono + 1.0
        telemetry.record_job_span(span)
        text = telemetry.render()
        assert "job_queue_wait_seconds_count 1" in text
        assert "job_execution_seconds_count 0" in text
        assert "job_latency_seconds_count 0" in text


HELP_A = ("# HELP repro_x First wording.\n"
          "# TYPE repro_x counter\n"
          "repro_x 1\n")
HELP_B = ("# HELP repro_x Conflicting wording.\n"
          "# TYPE repro_x counter\n"
          "repro_x 2\n")


class TestMergeExpositionLabels:
    def test_empty_fleet_merges_to_an_empty_exposition(self):
        assert merge_expositions([]).strip() == ""
        assert merge_expositions([], worker_labels=[]).strip() == ""

    def test_disjoint_metric_names_union(self):
        other = ("# HELP repro_y Other.\n"
                 "# TYPE repro_y gauge\n"
                 "repro_y 7\n")
        merged = merge_expositions([HELP_A, other])
        assert "repro_x 1" in merged
        assert "repro_y 7" in merged

    def test_conflicting_help_lines_keep_the_first(self):
        merged = merge_expositions([HELP_A, HELP_B])
        assert "repro_x 3" in merged
        assert merged.count("# HELP repro_x") == 1
        assert "First wording" in merged
        assert "Conflicting wording" not in merged

    def test_worker_labels_emit_per_node_series_beside_the_sum(self):
        merged = merge_expositions(
            [HELP_A, HELP_B],
            worker_labels=[None, "http://w1:9"],
        )
        assert "repro_x 3" in merged
        assert 'repro_x{worker="http://w1:9"} 2' in merged
        # The unlabeled coordinator contributes no per-worker series.
        assert merged.count("worker=") == 1

    def test_labels_extend_existing_label_sets(self):
        histogram = ('repro_h_bucket{le="1"} 2\n'
                     "repro_h_sum 1.5\n"
                     "repro_h_count 2\n")
        merged = merge_expositions([histogram], worker_labels=["w"])
        assert 'repro_h_bucket{le="1",worker="w"} 2' in merged
        assert 'repro_h_sum{worker="w"} 1.5' in merged

    def test_label_values_are_escaped(self):
        merged = merge_expositions(['m 1\n'], worker_labels=['a"b\\c'])
        assert 'm{worker="a\\"b\\\\c"} 1' in merged


# ----------------------------------------------------------------------
# service integration: one traced job end to end
# ----------------------------------------------------------------------
class TestServiceTraces:
    def test_unknown_trace_is_404(self):
        from repro.errors import ServiceError

        with BackgroundServer() as server:
            client = ServiceClient(server.host, server.port, max_retries=0)
            with pytest.raises(ServiceError) as info:
                client.trace("f" * 32)
            assert info.value.status == 404

    def test_traced_job_is_retrievable_and_exportable(self, tmp_path):
        trace_id = new_trace_id()
        traceparent = format_traceparent(
            SpanContext(trace_id, new_span_id(), True)
        )
        with BackgroundServer(cache_dir=tmp_path, workers=1) as server:
            client = ServiceClient(server.host, server.port)
            job = client.submit("optimize", program="bs", config="k1",
                                budget=5, traceparent=traceparent)
            client.result(job["id"], timeout=120)
            document = client.trace(trace_id)
            names = [s["name"] for s in document["spans"]]

            # submit → queue → pool → analysis, one trace id throughout.
            assert "http POST /v1/jobs" in names
            assert "job" in names
            assert "pool.execute" in names
            assert "usecase.optimize" in names
            assert any(n.startswith("pipeline.") for n in names)
            assert all(s["trace_id"] == trace_id
                       for s in document["spans"])

            # Pipeline stages aggregate instead of exploding: at most
            # one span per stage name under each parent, however many
            # hundred times the stage actually ran.
            stages = [(s["parent_id"], s["name"])
                      for s in document["spans"]
                      if s["name"].startswith("pipeline.")]
            assert len(stages) == len(set(stages))
            assert all(s.get("aggregate") for s in document["spans"]
                       if s["name"].startswith("pipeline."))

            # The job span also fed the latency histograms.
            metrics = client.metrics()
            assert "job_queue_wait_seconds_count 1" in metrics
            assert "job_execution_seconds_count 1" in metrics
            assert "job_latency_seconds_count 1" in metrics

            # Export is a loadable Chrome-trace document.
            chrome = to_chrome_trace(document["spans"])
            json.dumps(chrome)
            assert any(e["ph"] == "X" for e in chrome["traceEvents"])

    def test_untraced_requests_record_nothing(self, tmp_path):
        with BackgroundServer(cache_dir=tmp_path, workers=1,
                              trace_sample=0.0) as server:
            client = ServiceClient(server.host, server.port)
            client.run("optimize", program="bs", config="k1",
                       budget=5, timeout=120)
            assert server.app.traces.stats()["traces"] == 0
            # Histograms still work from timed (non-recording) spans.
            metrics = client.metrics()
            assert "job_execution_seconds_count 1" in metrics

    def test_profile_is_derived_from_stage_spans(self, tmp_path):
        """--profile shape survives the span rebuild (satellite 1)."""
        from repro.cli import main

        out = io.StringIO()
        import contextlib as _ctx
        with _ctx.redirect_stdout(out), _ctx.redirect_stderr(io.StringIO()):
            code = main(["optimize", "bs", "k1", "--budget", "5",
                         "--json", "--profile"])
        assert code == 0
        document = json.loads(out.getvalue())
        profile = document["profile"]
        assert set(profile) >= {"acfg", "fixpoint", "classify",
                                "guard", "ipet"}
        assert all(v >= 0.0 for v in profile.values())
