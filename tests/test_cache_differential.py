"""Differential tests: abstract cache analysis vs. the concrete cache.

The abstract must/may domains are only useful if they are *never
optimistic* with respect to the concrete LRU semantics they abstract
(Touzeau et al., arXiv:1701.08030, build an entire exact model just to
cross-check such classifications).  Two layers of comparison:

* **state level** — driving :class:`MustState`/:class:`MayState` and a
  :class:`ConcreteCache` in lockstep over random access sequences, the
  simulation relation must hold after every access: every must-block is
  cached with concrete age ≤ its must age, and every cached block is in
  the may state with concrete age ≥ its may age;
* **program level** — over generated programs, a reference classified
  always-hit (in every context) must never miss in the trace simulator,
  and always-miss must never hit, across direct-mapped and
  set-associative configurations.

A deterministic slice runs in tier-1; the wide hypothesis sweeps are
marked ``slow``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import random_program
from repro.cache.abstract import MayState, MustState
from repro.cache.classify import Classification, analyze_cache
from repro.cache.concrete import ConcreteCache
from repro.cache.config import CacheConfig
from repro.program.acfg import build_acfg
from repro.program.layout import AddressLayout
from repro.sim.executor import block_trace

#: Direct-mapped and set-associative shapes, small enough to evict.
STATE_CONFIGS = (
    CacheConfig(1, 16, 64),    # direct-mapped, 4 sets
    CacheConfig(1, 16, 256),   # direct-mapped, 16 sets
    CacheConfig(2, 16, 128),   # 2-way, 4 sets
    CacheConfig(4, 16, 128),   # 4-way, 2 sets
    CacheConfig(2, 32, 256),   # 2-way, larger blocks
)

PROGRAM_CONFIGS = (
    CacheConfig(1, 16, 256),   # direct-mapped
    CacheConfig(2, 16, 256),   # set-associative
    CacheConfig(4, 32, 512),   # wider blocks, more ways
)


def _assert_simulation_relation(must, may, concrete, config):
    """The soundness relation between abstract and concrete state."""
    cached = set(concrete.cached_blocks())
    for block in must.blocks():
        # must is an under-approximation with age upper bounds
        assert concrete.contains(block), (
            f"must-state block {block} absent from the concrete cache"
        )
        assert concrete.age_of(block) <= must.age_of(block)
    for block in cached:
        # may is an over-approximation with age lower bounds
        assert block in may, (
            f"cached block {block} missing from the may state"
        )
        assert may.age_of(block) <= concrete.age_of(block)


def _run_sequence(config, sequence):
    must = MustState(config)
    may = MayState(config)
    concrete = ConcreteCache(config)
    for block in sequence:
        # predictions from the *pre*-access states
        if block in must:
            assert concrete.contains(block), (
                f"must predicted a hit for block {block}, concrete misses"
            )
        if block not in may:
            assert not concrete.contains(block), (
                f"may excluded block {block}, concrete hits"
            )
        concrete.access(block)
        must = must.update(block)
        may = may.update(block)
        _assert_simulation_relation(must, may, concrete, config)
    return must, may, concrete


class TestStateLevelDeterministic:
    @pytest.mark.parametrize("config", STATE_CONFIGS, ids=lambda c: c.label())
    def test_thrashing_sequence(self, config):
        # cycle through more blocks than any set holds, twice
        blocks = list(range(3 * config.num_blocks)) * 2
        _run_sequence(config, blocks)

    @pytest.mark.parametrize("config", STATE_CONFIGS, ids=lambda c: c.label())
    def test_repeating_working_set(self, config):
        working_set = list(range(config.associativity + 1))
        _run_sequence(config, working_set * 5)

    def test_join_never_invents_must_blocks(self):
        """After a join, the must state only keeps common blocks — the
        classification can therefore never claim a hit one path lacks."""
        config = CacheConfig(2, 16, 128)
        left = MustState(config).update(1).update(2)
        right = MustState(config).update(3).update(2)
        joined = left.join(right)
        for concrete_path in ([1, 2], [3, 2]):
            concrete = ConcreteCache(config)
            for block in concrete_path:
                concrete.access(block)
            for block in joined.blocks():
                assert concrete.contains(block)

    def test_join_keeps_every_possibly_cached_block_in_may(self):
        config = CacheConfig(2, 16, 128)
        left = MayState(config).update(1).update(2)
        right = MayState(config).update(3)
        joined = left.join(right)
        assert {1, 2, 3} <= set(joined.blocks())


@pytest.mark.slow
class TestStateLevelPropertyBased:
    @settings(max_examples=120, deadline=None)
    @given(
        config=st.sampled_from(STATE_CONFIGS),
        sequence=st.lists(
            st.integers(min_value=0, max_value=40), min_size=0, max_size=60
        ),
    )
    def test_abstract_never_optimistic_on_any_sequence(self, config, sequence):
        _run_sequence(config, sequence)

    @settings(max_examples=60, deadline=None)
    @given(
        config=st.sampled_from(STATE_CONFIGS),
        prefix=st.lists(st.integers(0, 20), max_size=25),
        left=st.lists(st.integers(0, 20), max_size=10),
        right=st.lists(st.integers(0, 20), max_size=10),
        suffix=st.lists(st.integers(0, 20), max_size=15),
    )
    def test_joined_state_sound_for_both_branches(
        self, config, prefix, left, right, suffix
    ):
        """Branch-shaped flows: the joined abstract state must be sound
        for the concrete execution of either arm."""
        base_must = MustState(config)
        base_may = MayState(config)
        for block in prefix:
            base_must = base_must.update(block)
            base_may = base_may.update(block)
        arms_must, arms_may = [], []
        for arm in (left, right):
            must, may = base_must, base_may
            for block in arm:
                must = must.update(block)
                may = may.update(block)
            arms_must.append(must)
            arms_may.append(may)
        must = arms_must[0].join(arms_must[1])
        may = arms_may[0].join(arms_may[1])
        for arm in (left, right):
            concrete = ConcreteCache(config)
            for block in prefix + arm:
                concrete.access(block)
            state_must, state_may = must, may
            for block in suffix:
                if block in state_must:
                    assert concrete.contains(block)
                if block not in state_may:
                    assert not concrete.contains(block)
                concrete.access(block)
                state_must = state_must.update(block)
                state_may = state_may.update(block)
                _assert_simulation_relation(
                    state_must, state_may, concrete, config
                )


# ----------------------------------------------------------------------
# program level: classifications vs. the trace simulator
# ----------------------------------------------------------------------
def _concrete_outcomes(cfg, config, seed):
    """Replay one concrete run; yields (uid, hit) per dynamic fetch."""
    layout = AddressLayout(cfg)
    cache = ConcreteCache(config)
    for block in block_trace(cfg, seed=seed):
        for instr in block.instructions:
            mem_block = config.block_of_address(layout.address(instr.uid))
            yield instr.uid, cache.access(mem_block)


def _assert_classification_never_optimistic(program_seed, config, run_seeds):
    cfg = random_program(program_seed, target_size=90)
    acfg = build_acfg(cfg, block_size=config.block_size)
    analysis = analyze_cache(acfg, config)
    per_uid = {}
    for vertex in acfg.ref_vertices():
        per_uid.setdefault(vertex.instr.uid, set()).add(
            analysis.classification(vertex.rid)
        )
    for run_seed in run_seeds:
        for uid, hit in _concrete_outcomes(cfg, config, run_seed):
            classes = per_uid[uid]
            if classes == {Classification.ALWAYS_HIT}:
                assert hit, (
                    f"always-hit uid {uid} missed concretely (program "
                    f"seed {program_seed}, {config.label()})"
                )
            if classes == {Classification.ALWAYS_MISS}:
                assert not hit, (
                    f"always-miss uid {uid} hit concretely (program "
                    f"seed {program_seed}, {config.label()})"
                )


class TestProgramLevelDeterministic:
    @pytest.mark.parametrize("config", PROGRAM_CONFIGS, ids=lambda c: c.label())
    @pytest.mark.parametrize("program_seed", (3, 17))
    def test_classification_sound_on_generated_programs(
        self, program_seed, config
    ):
        _assert_classification_never_optimistic(
            program_seed, config, run_seeds=(0, 1)
        )


@pytest.mark.slow
class TestProgramLevelPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(
        program_seed=st.integers(min_value=0, max_value=10_000),
        config=st.sampled_from(PROGRAM_CONFIGS),
    )
    def test_classification_sound_across_configs(self, program_seed, config):
        _assert_classification_never_optimistic(
            program_seed, config, run_seeds=(0, 1, 2)
        )


# ----------------------------------------------------------------------
# kernel vs oracle: the dense numpy kernel against the python domains
# ----------------------------------------------------------------------
# The vectorized kernel (repro.cache.kernel) re-implements the three
# abstract domains as in-place int8 age-vector transforms.  Its contract
# is *bit-identity*, not mere soundness: every update/join must land on
# exactly the state the python oracle produces, so the rest of this
# section drives both implementations in lockstep and converts the dense
# rows back through row_to_state after every step.

import numpy as np

from repro.cache.config import TABLE2
from repro.cache.kernel import (
    BlockUniverse,
    DenseDomain,
    row_to_state,
    state_to_row,
)
from repro.cache.persistence import PersistenceState

DOMAIN_ORACLES = {
    "must": MustState,
    "may": MayState,
    "persistence": PersistenceState,
}
DOMAINS = tuple(DOMAIN_ORACLES)

#: Every Table 2 grid point (36 configurations) — the slow sweep runs
#: the full grid, tier-1 a capacity/associativity-spanning slice.
FULL_GRID = tuple(TABLE2.values())
TIER1_GRID = tuple(TABLE2[k] for k in ("k1", "k8", "k15", "k22", "k30", "k36"))

#: Accessed block ids; wider than any grid config's num_blocks so every
#: configuration sees evictions.  ``None`` marks a statically-unknown
#: access.
BLOCK_SPAN = 48


def _dual_universe(config):
    return BlockUniverse(config, 0, BLOCK_SPAN)


def _apply_oracle(state, block):
    return state.unknown_access() if block is None else state.update(block)


def _apply_dense(dom, universe, row, block):
    if block is None:
        dom.unknown(row)
    else:
        dom.update(row, universe.column(block))


def _run_dual_sequence(config, domain, sequence):
    """Drive oracle and dense kernel in lockstep; assert bit-identity
    after every access (both decode and encode directions)."""
    universe = _dual_universe(config)
    state = DOMAIN_ORACLES[domain](config)
    dom = DenseDomain(domain, config)
    row = dom.initial_row(universe.width)
    assert state_to_row(state, universe).tobytes() == row.tobytes()
    for step, block in enumerate(sequence):
        state = _apply_oracle(state, block)
        _apply_dense(dom, universe, row, block)
        assert row_to_state(domain, row, universe) == state, (
            f"{domain} diverged at step {step} (access {block!r}) on "
            f"{config.label()}"
        )
        assert state_to_row(state, universe).tobytes() == row.tobytes()
    return state, row, universe


def _dual_states(config, domain, sequence):
    universe = _dual_universe(config)
    state = DOMAIN_ORACLES[domain](config)
    dom = DenseDomain(domain, config)
    row = dom.initial_row(universe.width)
    for block in sequence:
        state = _apply_oracle(state, block)
        _apply_dense(dom, universe, row, block)
    return state, row, universe, dom


def _assert_joins_agree(config, domain, seq_a, seq_b):
    """Joins agree across kernels, commute, and are extensive upper
    bounds in the domain order (monotonicity of the lattice join)."""
    state_a, row_a, universe, dom = _dual_states(config, domain, seq_a)
    state_b, row_b, _, _ = _dual_states(config, domain, seq_b)

    joined = state_a.join(state_b)
    joined_row = dom.join(row_a.copy(), row_b)

    # cross-kernel bit-identity of the join itself
    assert row_to_state(domain, joined_row, universe) == joined
    assert state_to_row(joined, universe).tobytes() == joined_row.tobytes()

    # commutativity, in both kernels
    assert state_b.join(state_a) == joined
    assert dom.join(row_b.copy(), row_a).tobytes() == joined_row.tobytes()

    # idempotence, in both kernels
    assert state_a.join(state_a) == state_a
    assert dom.join(row_a.copy(), row_a).tobytes() == row_a.tobytes()

    # the join is an upper bound of both operands (ages only grow for
    # the max-join domains, only shrink for may) — dense rows make the
    # lattice order directly comparable
    if domain == "may":
        assert (joined_row <= row_a).all() and (joined_row <= row_b).all()
    else:
        assert (joined_row >= row_a).all() and (joined_row >= row_b).all()

    # joining again with either operand changes nothing (absorption)
    assert joined.join(state_a) == joined
    assert dom.join(joined_row.copy(), row_a).tobytes() == joined_row.tobytes()


def _deterministic_sequences(config):
    thrash = [b % BLOCK_SPAN for b in range(3 * config.num_blocks)] * 2
    working = list(range(config.associativity + 1)) * 5
    mixed = [(7 * i) % BLOCK_SPAN for i in range(40)]
    mixed[9] = None   # exercise the unknown-access transfer
    mixed[23] = None
    return (thrash, working, mixed)


class TestKernelVsOracleDeterministic:
    """Tier-1 slice: lockstep bit-identity on structured sequences."""

    @pytest.mark.parametrize("config", TIER1_GRID, ids=lambda c: c.label())
    @pytest.mark.parametrize("domain", DOMAINS)
    def test_update_sequences_bit_identical(self, config, domain):
        for sequence in _deterministic_sequences(config):
            _run_dual_sequence(config, domain, sequence)

    @pytest.mark.parametrize("config", TIER1_GRID, ids=lambda c: c.label())
    @pytest.mark.parametrize("domain", DOMAINS)
    def test_joins_agree_and_commute(self, config, domain):
        seq_a = [(5 * i) % BLOCK_SPAN for i in range(25)]
        seq_b = [(11 * i + 3) % BLOCK_SPAN for i in range(18)]
        _assert_joins_agree(config, domain, seq_a, seq_b)


@pytest.mark.slow
class TestKernelVsOraclePropertyBased:
    """Full Table 2 grid under hypothesis-generated access sequences."""

    @settings(max_examples=150, deadline=None)
    @given(
        config=st.sampled_from(FULL_GRID),
        domain=st.sampled_from(DOMAINS),
        sequence=st.lists(
            st.one_of(
                st.integers(min_value=0, max_value=BLOCK_SPAN - 1),
                st.none(),
            ),
            max_size=50,
        ),
    )
    def test_random_sequences_bit_identical(self, config, domain, sequence):
        _run_dual_sequence(config, domain, sequence)

    @settings(max_examples=100, deadline=None)
    @given(
        config=st.sampled_from(FULL_GRID),
        domain=st.sampled_from(DOMAINS),
        seq_a=st.lists(st.integers(0, BLOCK_SPAN - 1), max_size=30),
        seq_b=st.lists(st.integers(0, BLOCK_SPAN - 1), max_size=30),
    )
    def test_joins_agree_on_random_states(self, config, domain, seq_a, seq_b):
        _assert_joins_agree(config, domain, seq_a, seq_b)

    @settings(max_examples=60, deadline=None)
    @given(
        config=st.sampled_from(FULL_GRID),
        domain=st.sampled_from(DOMAINS),
        prefix=st.lists(st.integers(0, BLOCK_SPAN - 1), max_size=20),
        seq_a=st.lists(st.integers(0, BLOCK_SPAN - 1), max_size=15),
        seq_b=st.lists(st.integers(0, BLOCK_SPAN - 1), max_size=15),
        suffix=st.lists(st.integers(0, BLOCK_SPAN - 1), max_size=15),
    )
    def test_join_then_update_bit_identical(
        self, config, domain, prefix, seq_a, seq_b, suffix
    ):
        """Branch-shaped flows: updating a joined state stays lockstep —
        the composition the fixpoint engine exercises constantly."""
        state_a, row_a, universe, dom = _dual_states(
            config, domain, prefix + seq_a
        )
        state_b, row_b, _, _ = _dual_states(config, domain, prefix + seq_b)
        state = state_a.join(state_b)
        row = dom.join(row_a.copy(), row_b)
        assert row_to_state(domain, row, universe) == state
        for block in suffix:
            state = _apply_oracle(state, block)
            _apply_dense(dom, universe, row, block)
            assert row_to_state(domain, row, universe) == state
            assert state_to_row(state, universe).tobytes() == row.tobytes()
