"""Differential tests: abstract cache analysis vs. the concrete cache.

The abstract must/may domains are only useful if they are *never
optimistic* with respect to the concrete LRU semantics they abstract
(Touzeau et al., arXiv:1701.08030, build an entire exact model just to
cross-check such classifications).  Two layers of comparison:

* **state level** — driving :class:`MustState`/:class:`MayState` and a
  :class:`ConcreteCache` in lockstep over random access sequences, the
  simulation relation must hold after every access: every must-block is
  cached with concrete age ≤ its must age, and every cached block is in
  the may state with concrete age ≥ its may age;
* **program level** — over generated programs, a reference classified
  always-hit (in every context) must never miss in the trace simulator,
  and always-miss must never hit, across direct-mapped and
  set-associative configurations.

A deterministic slice runs in tier-1; the wide hypothesis sweeps are
marked ``slow``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import random_program
from repro.cache.abstract import MayState, MustState
from repro.cache.classify import Classification, analyze_cache
from repro.cache.concrete import ConcreteCache
from repro.cache.config import CacheConfig
from repro.program.acfg import build_acfg
from repro.program.layout import AddressLayout
from repro.sim.executor import block_trace

#: Direct-mapped and set-associative shapes, small enough to evict.
STATE_CONFIGS = (
    CacheConfig(1, 16, 64),    # direct-mapped, 4 sets
    CacheConfig(1, 16, 256),   # direct-mapped, 16 sets
    CacheConfig(2, 16, 128),   # 2-way, 4 sets
    CacheConfig(4, 16, 128),   # 4-way, 2 sets
    CacheConfig(2, 32, 256),   # 2-way, larger blocks
)

PROGRAM_CONFIGS = (
    CacheConfig(1, 16, 256),   # direct-mapped
    CacheConfig(2, 16, 256),   # set-associative
    CacheConfig(4, 32, 512),   # wider blocks, more ways
)


def _assert_simulation_relation(must, may, concrete, config):
    """The soundness relation between abstract and concrete state."""
    cached = set(concrete.cached_blocks())
    for block in must.blocks():
        # must is an under-approximation with age upper bounds
        assert concrete.contains(block), (
            f"must-state block {block} absent from the concrete cache"
        )
        assert concrete.age_of(block) <= must.age_of(block)
    for block in cached:
        # may is an over-approximation with age lower bounds
        assert block in may, (
            f"cached block {block} missing from the may state"
        )
        assert may.age_of(block) <= concrete.age_of(block)


def _run_sequence(config, sequence):
    must = MustState(config)
    may = MayState(config)
    concrete = ConcreteCache(config)
    for block in sequence:
        # predictions from the *pre*-access states
        if block in must:
            assert concrete.contains(block), (
                f"must predicted a hit for block {block}, concrete misses"
            )
        if block not in may:
            assert not concrete.contains(block), (
                f"may excluded block {block}, concrete hits"
            )
        concrete.access(block)
        must = must.update(block)
        may = may.update(block)
        _assert_simulation_relation(must, may, concrete, config)
    return must, may, concrete


class TestStateLevelDeterministic:
    @pytest.mark.parametrize("config", STATE_CONFIGS, ids=lambda c: c.label())
    def test_thrashing_sequence(self, config):
        # cycle through more blocks than any set holds, twice
        blocks = list(range(3 * config.num_blocks)) * 2
        _run_sequence(config, blocks)

    @pytest.mark.parametrize("config", STATE_CONFIGS, ids=lambda c: c.label())
    def test_repeating_working_set(self, config):
        working_set = list(range(config.associativity + 1))
        _run_sequence(config, working_set * 5)

    def test_join_never_invents_must_blocks(self):
        """After a join, the must state only keeps common blocks — the
        classification can therefore never claim a hit one path lacks."""
        config = CacheConfig(2, 16, 128)
        left = MustState(config).update(1).update(2)
        right = MustState(config).update(3).update(2)
        joined = left.join(right)
        for concrete_path in ([1, 2], [3, 2]):
            concrete = ConcreteCache(config)
            for block in concrete_path:
                concrete.access(block)
            for block in joined.blocks():
                assert concrete.contains(block)

    def test_join_keeps_every_possibly_cached_block_in_may(self):
        config = CacheConfig(2, 16, 128)
        left = MayState(config).update(1).update(2)
        right = MayState(config).update(3)
        joined = left.join(right)
        assert {1, 2, 3} <= set(joined.blocks())


@pytest.mark.slow
class TestStateLevelPropertyBased:
    @settings(max_examples=120, deadline=None)
    @given(
        config=st.sampled_from(STATE_CONFIGS),
        sequence=st.lists(
            st.integers(min_value=0, max_value=40), min_size=0, max_size=60
        ),
    )
    def test_abstract_never_optimistic_on_any_sequence(self, config, sequence):
        _run_sequence(config, sequence)

    @settings(max_examples=60, deadline=None)
    @given(
        config=st.sampled_from(STATE_CONFIGS),
        prefix=st.lists(st.integers(0, 20), max_size=25),
        left=st.lists(st.integers(0, 20), max_size=10),
        right=st.lists(st.integers(0, 20), max_size=10),
        suffix=st.lists(st.integers(0, 20), max_size=15),
    )
    def test_joined_state_sound_for_both_branches(
        self, config, prefix, left, right, suffix
    ):
        """Branch-shaped flows: the joined abstract state must be sound
        for the concrete execution of either arm."""
        base_must = MustState(config)
        base_may = MayState(config)
        for block in prefix:
            base_must = base_must.update(block)
            base_may = base_may.update(block)
        arms_must, arms_may = [], []
        for arm in (left, right):
            must, may = base_must, base_may
            for block in arm:
                must = must.update(block)
                may = may.update(block)
            arms_must.append(must)
            arms_may.append(may)
        must = arms_must[0].join(arms_must[1])
        may = arms_may[0].join(arms_may[1])
        for arm in (left, right):
            concrete = ConcreteCache(config)
            for block in prefix + arm:
                concrete.access(block)
            state_must, state_may = must, may
            for block in suffix:
                if block in state_must:
                    assert concrete.contains(block)
                if block not in state_may:
                    assert not concrete.contains(block)
                concrete.access(block)
                state_must = state_must.update(block)
                state_may = state_may.update(block)
                _assert_simulation_relation(
                    state_must, state_may, concrete, config
                )


# ----------------------------------------------------------------------
# program level: classifications vs. the trace simulator
# ----------------------------------------------------------------------
def _concrete_outcomes(cfg, config, seed):
    """Replay one concrete run; yields (uid, hit) per dynamic fetch."""
    layout = AddressLayout(cfg)
    cache = ConcreteCache(config)
    for block in block_trace(cfg, seed=seed):
        for instr in block.instructions:
            mem_block = config.block_of_address(layout.address(instr.uid))
            yield instr.uid, cache.access(mem_block)


def _assert_classification_never_optimistic(program_seed, config, run_seeds):
    cfg = random_program(program_seed, target_size=90)
    acfg = build_acfg(cfg, block_size=config.block_size)
    analysis = analyze_cache(acfg, config)
    per_uid = {}
    for vertex in acfg.ref_vertices():
        per_uid.setdefault(vertex.instr.uid, set()).add(
            analysis.classification(vertex.rid)
        )
    for run_seed in run_seeds:
        for uid, hit in _concrete_outcomes(cfg, config, run_seed):
            classes = per_uid[uid]
            if classes == {Classification.ALWAYS_HIT}:
                assert hit, (
                    f"always-hit uid {uid} missed concretely (program "
                    f"seed {program_seed}, {config.label()})"
                )
            if classes == {Classification.ALWAYS_MISS}:
                assert not hit, (
                    f"always-miss uid {uid} hit concretely (program "
                    f"seed {program_seed}, {config.label()})"
                )


class TestProgramLevelDeterministic:
    @pytest.mark.parametrize("config", PROGRAM_CONFIGS, ids=lambda c: c.label())
    @pytest.mark.parametrize("program_seed", (3, 17))
    def test_classification_sound_on_generated_programs(
        self, program_seed, config
    ):
        _assert_classification_never_optimistic(
            program_seed, config, run_seeds=(0, 1)
        )


@pytest.mark.slow
class TestProgramLevelPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(
        program_seed=st.integers(min_value=0, max_value=10_000),
        config=st.sampled_from(PROGRAM_CONFIGS),
    )
    def test_classification_sound_across_configs(self, program_seed, config):
        _assert_classification_never_optimistic(
            program_seed, config, run_seeds=(0, 1, 2)
        )
