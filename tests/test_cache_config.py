"""Tests for cache configurations and the Table 2 registry."""

from __future__ import annotations

import pytest

from repro.cache.config import (
    CAPACITIES,
    CacheConfig,
    TABLE2,
    config_id,
    configs_with_capacity,
)
from repro.errors import CacheConfigError


class TestCacheConfig:
    def test_num_sets(self):
        assert CacheConfig(2, 16, 1024).num_sets == 32
        assert CacheConfig(1, 32, 256).num_sets == 8
        assert CacheConfig(4, 32, 8192).num_sets == 64

    def test_num_blocks(self):
        assert CacheConfig(2, 16, 1024).num_blocks == 64

    def test_set_index_is_modulo(self):
        cfg = CacheConfig(1, 16, 256)  # 16 sets
        assert cfg.set_index(0) == 0
        assert cfg.set_index(16) == 0
        assert cfg.set_index(17) == 1

    def test_block_of_address(self):
        cfg = CacheConfig(1, 16, 256)
        assert cfg.block_of_address(0) == 0
        assert cfg.block_of_address(15) == 0
        assert cfg.block_of_address(16) == 1
        with pytest.raises(CacheConfigError):
            cfg.block_of_address(-1)

    @pytest.mark.parametrize(
        "assoc,block,cap",
        [(3, 16, 256), (1, 24, 256), (1, 16, 300), (4, 32, 64)],
    )
    def test_invalid_configs_rejected(self, assoc, block, cap):
        with pytest.raises(CacheConfigError):
            CacheConfig(assoc, block, cap)

    def test_scaled_capacity(self):
        cfg = CacheConfig(2, 16, 1024)
        half = cfg.scaled_capacity(0.5)
        assert half.capacity == 512
        assert half.associativity == 2
        assert half.block_size == 16

    def test_scaled_capacity_below_one_set_rejected(self):
        cfg = CacheConfig(4, 32, 256)
        with pytest.raises(CacheConfigError):
            cfg.scaled_capacity(0.25)

    def test_label(self):
        assert CacheConfig(2, 16, 1024).label() == "(2, 16, 1024)"


class TestTable2:
    def test_has_36_entries(self):
        assert len(TABLE2) == 36
        assert set(TABLE2) == {f"k{i}" for i in range(1, 37)}

    def test_paper_reading_order(self):
        # Table 2: k1=(1,16,256), k2=(2,16,256), k3=(4,16,256),
        # k4=(1,32,256), ..., k36=(4,32,8192).
        assert TABLE2["k1"] == CacheConfig(1, 16, 256)
        assert TABLE2["k2"] == CacheConfig(2, 16, 256)
        assert TABLE2["k4"] == CacheConfig(1, 32, 256)
        assert TABLE2["k7"] == CacheConfig(1, 16, 512)
        assert TABLE2["k36"] == CacheConfig(4, 32, 8192)

    def test_all_unique(self):
        assert len(set(TABLE2.values())) == 36

    def test_capacity_span(self):
        assert CAPACITIES == (256, 512, 1024, 2048, 4096, 8192)
        assert {cfg.capacity for cfg in TABLE2.values()} == set(CAPACITIES)

    def test_config_id_roundtrip(self):
        for kid, cfg in TABLE2.items():
            assert config_id(cfg) == kid

    def test_config_id_unknown(self):
        with pytest.raises(CacheConfigError):
            config_id(CacheConfig(8, 16, 256))

    def test_config_id_resolves_reconstructed_configs(self):
        # the lookup must key on value equality, not identity: a config
        # rebuilt from its fields resolves to the same Table 2 id
        for kid, cfg in TABLE2.items():
            clone = CacheConfig(
                cfg.associativity, cfg.block_size, cfg.capacity
            )
            assert clone is not cfg
            assert config_id(clone) == kid

    def test_config_id_error_names_the_config(self):
        rogue = CacheConfig(8, 16, 256)
        with pytest.raises(CacheConfigError, match=r"\(8, 16, 256\)"):
            config_id(rogue)

    def test_configs_with_capacity(self):
        found = configs_with_capacity(1024)
        assert len(found) == 6
        assert all(cfg.capacity == 1024 for cfg in found)
        with pytest.raises(CacheConfigError):
            configs_with_capacity(123)
