"""Tests for data-cache analysis, split simulation, and data prefetching."""

from __future__ import annotations

import pytest

from repro.analysis.timing import TimingModel
from repro.cache.classify import Classification
from repro.cache.config import CacheConfig
from repro.data.analysis import (
    analyze_data_cache,
    build_data_plan,
    combined_wcet,
    exact_data_block,
)
from repro.data.machine import simulate_split
from repro.data.model import DataKind
from repro.data.prefetch import optimize_data
from repro.cache.classify import UNKNOWN_ACCESS
from repro.program.acfg import build_acfg
from repro.program.builder import ProgramBuilder

ICACHE = CacheConfig(2, 16, 512)
DCACHE = CacheConfig(2, 16, 256)
TIMING = TimingModel(1, 30, 1)


def _scalar_program():
    b = ProgramBuilder("scalars")
    b.data_region("cfg", 64)
    b.code(2)
    with b.loop(bound=10, sim_iterations=8):
        b.load("cfg", offset=0)
        b.code(3)
        b.load("cfg", offset=32)
        b.code(2)
    b.code(1)
    return b.build()


def _stream_program():
    b = ProgramBuilder("stream")
    b.data_region("samples", 4096)
    b.code(2)
    with b.loop(bound=32, sim_iterations=24):
        b.load("samples", stride=4)
        b.code(4)
    b.code(1)
    return b.build()


class TestExactness:
    def test_scalar_access_always_exact(self):
        cfg = _scalar_program()
        acfg = build_acfg(cfg, ICACHE.block_size)
        for vertex in acfg.ref_vertices():
            if vertex.instr.data_access is None:
                continue
            assert exact_data_block(acfg, vertex.rid, DCACHE.block_size) is not None

    def test_stream_exact_only_in_first_context(self):
        cfg = _stream_program()
        acfg = build_acfg(cfg, ICACHE.block_size)
        exact, unknown = 0, 0
        for vertex in acfg.ref_vertices():
            if vertex.instr.data_access is None:
                continue
            block = exact_data_block(acfg, vertex.rid, DCACHE.block_size)
            if block is None:
                unknown += 1
            else:
                exact += 1
        assert exact == 1  # FIRST context
        assert unknown == 1  # REST context

    def test_plan_marks_unknowns(self):
        cfg = _stream_program()
        acfg = build_acfg(cfg, ICACHE.block_size)
        plan = build_data_plan(acfg, DCACHE)
        kinds = [entry[0] for entry in plan if entry is not None]
        assert UNKNOWN_ACCESS in kinds


class TestClassification:
    def test_scalar_reuse_hits_after_first(self):
        cfg = _scalar_program()
        acfg = build_acfg(cfg, ICACHE.block_size)
        analysis = analyze_data_cache(acfg, DCACHE)
        rest_data = [
            analysis.classification(v.rid)
            for v in acfg.ref_vertices()
            if v.instr.data_access is not None
            and any(el.kind == "R" for el in v.context)
        ]
        assert rest_data
        assert all(c.is_hit for c in rest_data)

    def test_unknown_accesses_not_classified(self):
        cfg = _stream_program()
        acfg = build_acfg(cfg, ICACHE.block_size)
        analysis = analyze_data_cache(acfg, DCACHE)
        assert analysis.count(Classification.NOT_CLASSIFIED) >= 1

    def test_unknown_accesses_age_scalar_blocks(self):
        """A stream walking an unknown region conservatively destroys
        the guarantee for scalars sharing the (possibly aliasing) sets —
        the imprecision the data prefetcher then repairs."""
        b = ProgramBuilder("mix")
        b.data_region("cfg", 32)
        b.data_region("samples", 4096)
        b.code(2)
        with b.loop(bound=16, sim_iterations=12):
            b.load("samples", stride=4)
            b.load("samples", offset=16, stride=4)
            b.load("cfg", offset=0)
            b.code(3)
        cfg = b.build()
        acfg = build_acfg(cfg, ICACHE.block_size)
        analysis = analyze_data_cache(acfg, DCACHE)
        rest_cfg_loads = [
            analysis.classification(v.rid)
            for v in acfg.ref_vertices()
            if v.instr.data_access is not None
            and v.instr.data_access.region == "cfg"
            and any(el.kind == "R" for el in v.context)
        ]
        assert rest_cfg_loads
        assert not any(c is Classification.ALWAYS_HIT for c in rest_cfg_loads)


class TestCombinedWCET:
    def test_combined_exceeds_instruction_only(self):
        cfg = _scalar_program()
        acfg = build_acfg(cfg, ICACHE.block_size)
        combined = combined_wcet(acfg, ICACHE, DCACHE, TIMING)
        assert combined.tau_w > combined.instruction.tau_w

    def test_pure_code_program_combined_equals_instruction(
        self, loop_program
    ):
        acfg = build_acfg(loop_program, ICACHE.block_size)
        combined = combined_wcet(acfg, ICACHE, DCACHE, TIMING)
        assert combined.tau_w == pytest.approx(combined.instruction.tau_w)
        assert combined.data_misses == 0

    def test_bigger_data_cache_never_worse(self):
        cfg = _scalar_program()
        acfg = build_acfg(cfg, ICACHE.block_size)
        small = combined_wcet(acfg, ICACHE, CacheConfig(1, 16, 64), TIMING)
        large = combined_wcet(acfg, ICACHE, CacheConfig(4, 16, 1024), TIMING)
        assert large.tau_w <= small.tau_w


class TestSplitSimulation:
    def test_data_side_counts_accesses(self):
        cfg = _scalar_program()
        result = simulate_split(cfg, ICACHE, DCACHE, TIMING, seed=1)
        assert result.data.fetches == 16  # 8 iterations x 2 loads
        assert result.memory_cycles == pytest.approx(
            result.instruction.memory_cycles + result.data.memory_cycles
        )

    def test_stream_addresses_advance(self):
        cfg = _stream_program()
        result = simulate_split(cfg, ICACHE, DCACHE, TIMING, seed=1)
        # 24 iterations x 4-byte stride = 96 bytes = 6+ blocks missed
        assert result.data.demand_misses >= 6

    def test_data_misses_sound_vs_analysis(self):
        """The WCET data-miss bound dominates any simulated run."""
        for factory in (_scalar_program, _stream_program):
            cfg = factory()
            acfg = build_acfg(cfg, ICACHE.block_size)
            combined = combined_wcet(acfg, ICACHE, DCACHE, TIMING)
            sim = simulate_split(cfg, ICACHE, DCACHE, TIMING, seed=2)
            assert combined.data_misses >= sim.data.demand_misses


class TestDataPrefetching:
    def _mixed_program(self):
        b = ProgramBuilder("mix")
        b.data_region("table", 64)
        b.data_region("samples", 4096)
        b.code(4)
        with b.loop(bound=32, sim_iterations=28):
            b.load("samples", stride=4)
            b.code(3)
            b.load("table", offset=0)
            b.code(2)
            b.load("table", offset=32)
            b.code(3)
            b.store("samples", offset=0, stride=4)
        b.code(2)
        return b.build()

    def test_inserts_and_never_regresses(self):
        cfg = self._mixed_program()
        optimized, report = optimize_data(cfg, ICACHE, DCACHE, TIMING)
        assert report.tau_final <= report.tau_original
        assert report.data_misses_final <= report.data_misses_original
        if report.inserted:
            assert optimized.prefetch_count == len(report.inserted)

    def test_original_untouched(self):
        cfg = self._mixed_program()
        before = cfg.instruction_count
        optimize_data(cfg, ICACHE, DCACHE, TIMING)
        assert cfg.instruction_count == before

    def test_combined_guarantee_reverified(self):
        cfg = self._mixed_program()
        optimized, report = optimize_data(cfg, ICACHE, DCACHE, TIMING)
        acfg_orig = build_acfg(cfg, ICACHE.block_size)
        acfg_opt = build_acfg(optimized, ICACHE.block_size)
        orig = combined_wcet(acfg_orig, ICACHE, DCACHE, TIMING)
        opt = combined_wcet(acfg_opt, ICACHE, DCACHE, TIMING)
        assert opt.tau_w <= orig.tau_w + 1e-6

    def test_no_data_no_insertions(self, loop_program):
        optimized, report = optimize_data(loop_program, ICACHE, DCACHE, TIMING)
        assert report.inserted == []
        assert report.tau_final == report.tau_original
