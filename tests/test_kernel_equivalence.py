"""Full-pipeline equivalence of the python and vectorized cache kernels.

The vectorized kernel's contract is bit-identity end to end: not just
per-state (see test_cache_differential.py) but through the whole
analysis stack — fixpoint states, classifications, τ_w, accepted
prefetches (Λ placement), and the resulting energy ratios must be
*exactly* equal under ``kernel="python"`` and ``kernel="vectorized"``.
A golden corpus under ``tests/data/kernel_golden/`` pins the serialized
fixpoint states of a few program/config points so a regression in either
kernel (or in the shared encoding) is caught even if both kernels drift
together relative to history.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.analysis.pipeline import AnalysisPipeline
from repro.bench.registry import load
from repro.cache.abstract import MayState, MustState
from repro.cache.classify import analyze_cache
from repro.cache.config import TABLE2
from repro.cache.persistence import PersistenceState
from repro.core.optimizer import OptimizerOptions, optimize
from repro.energy.cacti import cacti_model
from repro.energy.technology import technology
from repro.experiments.usecase import UseCase, run_usecase
from repro.program.acfg import build_acfg

KERNELS = ("python", "vectorized")

#: Tier-1 matrix: three Mälardalen programs spanning two orders of
#: magnitude in ACFG size, against a direct-mapped and an associative
#: Table 2 point.
PROGRAMS = ("bs", "crc", "ndes")
CONFIG_IDS = ("k1", "k15")

GOLDEN_DIR = Path(__file__).parent / "data" / "kernel_golden"


def _timing(config):
    return cacti_model(config, technology("45nm")).timing_model()


# ----------------------------------------------------------------------
# canonical state serialization (shared with the golden corpus)
# ----------------------------------------------------------------------
def _state_repr(state) -> str:
    """A canonical, human-diffable rendering of one abstract state."""
    if state is None:
        return "unreachable"
    if isinstance(state, PersistenceState):
        parts = []
        for set_index, pairs in sorted(state._sets.items()):
            if pairs:
                parts.append(
                    f"{set_index}:"
                    + ",".join(f"{block}@{age}" for block, age in pairs)
                )
        return "P{" + " ".join(parts) + "}"
    tag = "M" if isinstance(state, MustState) else "Y"
    parts = []
    for set_index in sorted(state.touched_sets()):
        ages = []
        for age, entry in enumerate(state.lines(set_index)):
            if entry:
                ages.append(f"{age}=" + "|".join(map(str, sorted(entry))))
        if ages:
            parts.append(f"{set_index}:" + ",".join(ages))
    return tag + "{" + " ".join(parts) + "}"


def serialize_analysis(acfg, analysis) -> str:
    """Serialize classifications and all fixpoint states canonically.

    Both kernels must reproduce this text byte for byte; the golden
    corpus stores it verbatim.
    """
    lines = ["[classifications]"]
    for rid in range(len(acfg.vertices)):
        cls = analysis.classifications[rid]
        lines.append(f"{rid} {cls.name if cls is not None else '-'}")
    for domain in ("must", "may", "persistence"):
        dataflow = getattr(analysis, domain)
        for direction in ("in", "out"):
            lines.append(f"[{domain}.{direction}]")
            states = (
                dataflow.in_states if direction == "in"
                else dataflow.out_states
            )
            for rid, state in enumerate(states):
                lines.append(f"{rid} {_state_repr(state)}")
    return "\n".join(lines) + "\n"


def _analyze(program: str, config_id: str, kernel: str):
    config = TABLE2[config_id]
    acfg = build_acfg(load(program), config.block_size, 0)
    return acfg, analyze_cache(acfg, config, kernel=kernel)


# ----------------------------------------------------------------------
# analysis-level bit-identity
# ----------------------------------------------------------------------
class TestAnalysisBitIdentity:
    @pytest.mark.parametrize("config_id", CONFIG_IDS)
    @pytest.mark.parametrize("program", PROGRAMS)
    def test_analyze_cache_identical(self, program, config_id):
        acfg, py = _analyze(program, config_id, "python")
        _, vec = _analyze(program, config_id, "vectorized")
        assert py.classifications == vec.classifications
        for domain in ("must", "may", "persistence"):
            py_df = getattr(py, domain)
            vec_df = getattr(vec, domain)
            for rid in range(len(acfg.vertices)):
                assert py_df.in_states[rid] == vec_df.in_states[rid], (
                    f"{program}/{config_id} {domain} in-state differs at "
                    f"rid {rid}"
                )
                assert py_df.out_states[rid] == vec_df.out_states[rid]

    @pytest.mark.parametrize("program", PROGRAMS)
    def test_states_share_interning_identity(self, program):
        """Cross-kernel states are not merely equal — they hash equal
        and intern together (the shared hash-consing table contract)."""
        _, py = _analyze(program, "k1", "python")
        _, vec = _analyze(program, "k1", "vectorized")
        for domain in ("must", "may", "persistence"):
            for a, b in zip(
                getattr(py, domain).in_states, getattr(vec, domain).in_states
            ):
                if a is None or b is None:
                    assert a is None and b is None
                    continue
                assert a == b and hash(a) == hash(b)
                assert a.domain_tag == b.domain_tag
                assert len({a, b}) == 1

    @pytest.mark.parametrize("config_id", CONFIG_IDS)
    @pytest.mark.parametrize("program", PROGRAMS)
    def test_wcet_identical(self, program, config_id):
        config = TABLE2[config_id]
        timing = _timing(config)
        cfg = load(program)
        results = {}
        for kernel in KERNELS:
            pipeline = AnalysisPipeline(config, timing, kernel=kernel)
            results[kernel] = pipeline.analyze(cfg).wcet
        py, vec = results["python"], results["vectorized"]
        assert py.tau_w == vec.tau_w
        assert py.t_w == vec.t_w
        assert py.solution.objective == vec.solution.objective
        assert py.persistent_charged_blocks == vec.persistent_charged_blocks
        assert py.latency_guarded == vec.latency_guarded


# ----------------------------------------------------------------------
# optimizer- and energy-level bit-identity
# ----------------------------------------------------------------------
def _optimize(program: str, config_id: str, kernel: str):
    config = TABLE2[config_id]
    timing = _timing(config)
    opts = OptimizerOptions(kernel=kernel)
    pipeline = AnalysisPipeline.for_options(config, timing, opts)
    return optimize(load(program), config, timing, opts, pipeline=pipeline)


def _assert_reports_identical(py_report, vec_report):
    assert py_report.tau_original == vec_report.tau_original
    assert py_report.tau_final == vec_report.tau_final
    assert py_report.misses_original == vec_report.misses_original
    assert py_report.misses_final == vec_report.misses_final
    assert (
        py_report.static_instructions_final
        == vec_report.static_instructions_final
    )
    assert py_report.inserted == vec_report.inserted
    assert py_report.candidates_evaluated == vec_report.candidates_evaluated
    assert py_report.passes == vec_report.passes


class TestOptimizeBitIdentity:
    def test_ndes_k1_optimization_identical(self):
        _, py_report = _optimize("ndes", "k1", "python")
        _, vec_report = _optimize("ndes", "k1", "vectorized")
        assert py_report.prefetch_count > 0  # a non-trivial witness
        _assert_reports_identical(py_report, vec_report)

    def test_ndes_usecase_ratios_identical(self):
        """WCET, ACET and energy ratios — the paper's three inequations —
        agree exactly between kernels."""
        results = {
            kernel: run_usecase(
                UseCase("ndes", "k1", "45nm"),
                options=OptimizerOptions(kernel=kernel),
            )
            for kernel in KERNELS
        }
        py, vec = results["python"], results["vectorized"]
        assert py.wcet_ratio == vec.wcet_ratio
        assert py.acet_ratio == vec.acet_ratio
        assert py.energy_ratio == vec.energy_ratio
        assert py.energy_ratio_paper_mode == vec.energy_ratio_paper_mode
        assert py.report.inserted == vec.report.inserted


@pytest.mark.slow
class TestLongSweep:
    """Wider program × configuration sweep, plus the two heaviest
    optimizer runs, excluded from tier-1 for runtime."""

    @pytest.mark.parametrize(
        "config_id", ("k1", "k8", "k15", "k22", "k30", "k36")
    )
    @pytest.mark.parametrize(
        "program", ("bs", "crc", "ndes", "fdct", "jfdctint", "adpcm")
    )
    def test_analysis_identical(self, program, config_id):
        acfg, py = _analyze(program, config_id, "python")
        _, vec = _analyze(program, config_id, "vectorized")
        assert serialize_analysis(acfg, py) == serialize_analysis(acfg, vec)

    @pytest.mark.parametrize("program,config_id",
                             (("fdct", "k1"), ("jfdctint", "k15")))
    def test_optimization_identical(self, program, config_id):
        _, py_report = _optimize(program, config_id, "python")
        _, vec_report = _optimize(program, config_id, "vectorized")
        _assert_reports_identical(py_report, vec_report)


# ----------------------------------------------------------------------
# golden-state regression corpus
# ----------------------------------------------------------------------
def _golden_files():
    return sorted(GOLDEN_DIR.glob("*.json"))


class TestGoldenCorpus:
    def test_corpus_not_empty(self):
        assert _golden_files(), f"no golden states under {GOLDEN_DIR}"

    @pytest.mark.parametrize(
        "path", _golden_files(), ids=lambda p: p.stem
    )
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_kernel_reproduces_golden_states(self, path, kernel):
        document = json.loads(path.read_text())
        acfg, analysis = _analyze(
            document["program"], document["config"], kernel
        )
        payload = serialize_analysis(acfg, analysis)
        digest = hashlib.sha256(payload.encode()).hexdigest()
        assert digest == document["sha256"], (
            f"{kernel} kernel diverged from golden corpus {path.name}"
        )
        assert payload == document["payload"]
