"""Oracle test: on a tiny program the optimizer must do at least as
well as brute-force enumeration of every single-prefetch insertion."""

from __future__ import annotations

import pytest

from repro.analysis.timing import TimingModel
from repro.analysis.wcet import analyze_wcet
from repro.cache.config import CacheConfig
from repro.core.optimizer import OptimizerOptions, optimize
from repro.program.acfg import build_acfg
from repro.program.builder import ProgramBuilder

CONFIG = CacheConfig(2, 16, 64)  # 2 sets, 2-way
TIMING = TimingModel(1, 3, 1)


def _tiny():
    b = ProgramBuilder("tiny")
    with b.loop(bound=6):
        b.code(30)  # 8 blocks through a 4-block cache
    return b.build()


def _best_single_insertion_tau(cfg) -> float:
    """Brute force: try a prefetch at every position for every target."""
    base_acfg = build_acfg(cfg, CONFIG.block_size)
    base = analyze_wcet(base_acfg, CONFIG, TIMING)
    best = base.tau_w
    targets = sorted({i.uid for i in cfg.instructions()})
    for block in list(cfg.blocks):
        for index in range(len(block.instructions) + 1):
            for target_uid in targets:
                trial = cfg.clone()
                trial.insert_prefetch(block.name, index, target_uid)
                acfg = build_acfg(trial, CONFIG.block_size)
                tau = analyze_wcet(acfg, CONFIG, TIMING).tau_w
                best = min(best, tau)
    return best


@pytest.mark.slow
class TestOracle:
    def test_optimizer_at_least_as_good_as_best_single_insertion(self):
        cfg = _tiny()
        brute = _best_single_insertion_tau(cfg)
        _, report = optimize(cfg, CONFIG, TIMING)
        # multi-insertion greedy must reach (or beat) the single-insertion
        # optimum on this tiny instance
        assert report.tau_final <= brute + 1e-6

    def test_brute_force_confirms_theorem1_space(self):
        """Sanity on the search space itself: the unmodified program is
        a feasible point, so the brute-force optimum never exceeds the
        baseline."""
        cfg = _tiny()
        base = analyze_wcet(build_acfg(cfg, CONFIG.block_size), CONFIG, TIMING)
        assert _best_single_insertion_tau(cfg) <= base.tau_w
