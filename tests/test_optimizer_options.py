"""Tests for the optimizer's strategy/baseline options and the
latency guard interplay."""

from __future__ import annotations

import pytest

from repro.bench.generator import random_program
from repro.cache.config import CacheConfig
from repro.core.guarantees import verify_wcet_guarantee
from repro.core.optimizer import OptimizerOptions, optimize
from repro.errors import OptimizationError
from repro.program.builder import ProgramBuilder


def _streaming_program():
    b = ProgramBuilder("stream")
    b.code(4)
    with b.loop(bound=12, sim_iterations=10):
        b.code(90)
    b.code(2)
    return b.build()


class TestPlacementStrategies:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(OptimizationError):
            OptimizerOptions(placement="somewhere-nice")

    def test_paper_placement_dominates_block_begin(self, tiny_cache, timing):
        cfg = _streaming_program()
        _, paper = optimize(
            cfg, tiny_cache, timing,
            options=OptimizerOptions(placement="earliest-survivable"),
        )
        _, ref5 = optimize(
            cfg, tiny_cache, timing,
            options=OptimizerOptions(placement="block-begin"),
        )
        assert paper.wcet_reduction >= ref5.wcet_reduction

    def test_block_begin_still_guaranteed(self, tiny_cache, timing):
        cfg = _streaming_program()
        optimized, report = optimize(
            cfg, tiny_cache, timing,
            options=OptimizerOptions(placement="block-begin"),
        )
        check = verify_wcet_guarantee(cfg, optimized, tiny_cache, timing)
        assert check.theorem1_holds

    @pytest.mark.parametrize("seed", range(5))
    def test_both_strategies_safe_on_random_programs(self, seed, timing):
        cfg = random_program(seed + 3000, target_size=70)
        config = CacheConfig(1, 16, 128)
        for placement in ("earliest-survivable", "block-begin"):
            optimized, _ = optimize(
                cfg, config, timing,
                options=OptimizerOptions(placement=placement),
            )
            check = verify_wcet_guarantee(cfg, optimized, config, timing)
            assert check.theorem1_holds


class TestPlacementRetries:
    def test_zero_retries_still_works(self, tiny_cache, timing):
        cfg = _streaming_program()
        _, report = optimize(
            cfg, tiny_cache, timing,
            options=OptimizerOptions(placement_retries=0),
        )
        assert report.tau_final <= report.tau_original

    def test_retries_never_hurt_the_outcome(self, tiny_cache, timing):
        cfg = _streaming_program()
        _, without = optimize(
            cfg, tiny_cache, timing,
            options=OptimizerOptions(placement_retries=0),
        )
        _, with_retries = optimize(
            cfg, tiny_cache, timing,
            options=OptimizerOptions(placement_retries=3),
        )
        # retries explore a superset of placements; the greedy result
        # is not guaranteed better, but the guarantee must hold either way
        assert with_retries.tau_final <= with_retries.tau_original
        assert without.tau_final <= without.tau_original


class TestBaselines:
    def test_classic_baseline_is_looser(self, tiny_cache, timing):
        b = ProgramBuilder("p")
        with b.loop(bound=20):
            b.code(2)
            with b.if_then(taken_prob=0.5):
                b.code(8)
        cfg = b.build()
        _, classic = optimize(
            cfg, tiny_cache, timing,
            options=OptimizerOptions(with_persistence=False),
        )
        _, persistence = optimize(
            cfg, tiny_cache, timing,
            options=OptimizerOptions(with_persistence=True),
        )
        assert classic.tau_original >= persistence.tau_original

    def test_classic_baseline_guarantee_still_holds(self, tiny_cache, timing):
        cfg = _streaming_program()
        optimized, report = optimize(
            cfg, tiny_cache, timing,
            options=OptimizerOptions(with_persistence=False),
        )
        # verify against the SAME baseline fidelity
        from repro.analysis.wcet import analyze_wcet
        from repro.program.acfg import build_acfg

        orig = analyze_wcet(
            build_acfg(cfg, tiny_cache.block_size),
            tiny_cache,
            timing,
            with_persistence=False,
        )
        opt = analyze_wcet(
            build_acfg(optimized, tiny_cache.block_size),
            tiny_cache,
            timing,
            with_persistence=False,
        )
        assert opt.tau_w <= orig.tau_w + 1e-6
