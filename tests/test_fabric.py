"""Tests for the distributed sweep fabric.

Layers, cheapest first:

* shards — content-hash partitioning, splitting, steal clones;
* result store — first-writer-wins dedupe over the shared disk cache;
* protocol — the ``shard`` job kind and the fabric request families;
* telemetry — fleet-wide ``/metrics`` exposition merging;
* stream framing — chunked transfer + SSE parsing, including reads
  that split frames and streams that die mid-chunk;
* cache — multi-node prune/put races tolerated and counted;
* scheduling — deficit-round-robin fairness across tenants (pure
  logic, no sockets);
* end-to-end — a real coordinator + worker pair over real sockets:
  submit, stream, merged document, store pre-resolution, and a dead
  worker surfacing structured failures instead of a hung sweep.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from types import SimpleNamespace

import pytest

from repro.errors import ProtocolError, ServiceError
from repro.experiments.cache import (
    SweepDiskCache,
    result_to_dict,
    usecase_key,
)
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.experiments.usecase import UseCase
from repro.fabric.coordinator import Coordinator
from repro.fabric.shards import (
    MAX_SHARD_CASES,
    Shard,
    auto_shard_size,
    clone_for_steal,
    partition,
    shard_id,
    split,
)
from repro.fabric.store import ResultStore
from repro.fabric.stream import (
    CHUNK_END,
    chunk,
    iter_chunks,
    iter_sse,
    parse_sse_block,
    sse_event,
)
from repro.service.app import BackgroundServer
from repro.service.client import ServiceClient
from repro.service.protocol import (
    FABRIC_DEFAULT_KERNEL,
    parse_fabric_sweep,
    parse_job,
    parse_worker_registration,
)
from repro.service.telemetry import merge_expositions

#: One fast program, one config, one tech: a single-case grid keeps
#: the end-to-end tests around real compute, not waiting on it.
TINY = dict(programs=["bs"], configs=["k1"], techs=["45nm"], budget=10)


@pytest.fixture(autouse=True)
def _no_ambient_config(monkeypatch):
    """Keep the environment from injecting caches, workers or kernels."""
    monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_SWEEP_CACHE_MAX_BYTES", raising=False)
    monkeypatch.delenv("REPRO_CACHE_KERNEL", raising=False)


@pytest.fixture(scope="module")
def tiny_result():
    """One real result to feed stores and caches (computed once)."""
    results = run_sweep(
        SweepSpec(programs=("bs",), config_ids=("k1",), techs=("45nm",),
                  max_evaluations=10),
        use_cache=False, workers=1,
    )
    return results[0]


# ----------------------------------------------------------------------
# shards
# ----------------------------------------------------------------------
class TestShards:
    KEYS = [f"key-{i:02d}" for i in range(10)]

    def test_shard_id_is_content_addressed(self):
        a = shard_id("sweep1", ["k1", "k2"])
        assert a == shard_id("sweep1", ["k1", "k2"])
        assert a != shard_id("sweep2", ["k1", "k2"])
        assert a != shard_id("sweep1", ["k2", "k1"])
        assert a != shard_id("sweep1", ["k1", "k2"], speculative=True)

    def test_partition_covers_every_index_in_order(self):
        shards = partition("s", "default", list(range(10)), self.KEYS, 4)
        assert [s.size for s in shards] == [4, 4, 2]
        covered = [i for s in shards for i in s.indices]
        assert covered == list(range(10))
        for s in shards:
            assert s.keys == tuple(self.KEYS[i] for i in s.indices)
            assert s.tenant == "default"

    def test_split_halves_and_carries_attempts(self):
        [s] = partition("s", "t", list(range(5)), self.KEYS, 5)
        s.attempts = 2
        halves = split(s)
        assert [h.size for h in halves] == [2, 3]
        assert all(h.attempts == 2 for h in halves)
        assert halves[0].indices + halves[1].indices == s.indices
        assert halves[0].id != halves[1].id != s.id

    def test_split_of_single_case_returns_itself(self):
        [s] = partition("s", "t", [3], self.KEYS, 1)
        assert split(s) == [s]

    def test_clone_for_steal_is_speculative_with_salted_id(self):
        [s] = partition("s", "t", list(range(4)), self.KEYS, 4)
        clone = clone_for_steal(s, [2, 3], self.KEYS)
        assert clone.speculative
        assert clone.indices == (2, 3)
        assert clone.keys == ("key-02", "key-03")
        assert clone.id != shard_id("s", clone.keys)  # salted

    def test_auto_shard_size_targets_shards_per_slot(self):
        # 100 cases over 2 slots -> 8 shard targets -> 13 cases each.
        assert auto_shard_size(100, 2) == 13
        assert auto_shard_size(1, 8) == 1
        assert auto_shard_size(10 ** 6, 1) == MAX_SHARD_CASES


# ----------------------------------------------------------------------
# result store
# ----------------------------------------------------------------------
class TestResultStore:
    def test_first_writer_wins_and_duplicates_are_counted(self, tiny_result):
        store = ResultStore()
        assert store.put("k", tiny_result)
        assert not store.put("k", tiny_result)
        assert store.puts == 1
        assert store.duplicates == 1
        assert len(store) == 1
        assert "k" in store

    def test_disk_layer_round_trips_and_promotes(self, tmp_path, tiny_result):
        writer = ResultStore(cache_dir=tmp_path)
        writer.put("key-shared", tiny_result)
        # A second store over the same directory — another node.
        reader = ResultStore(cache_dir=tmp_path)
        hit = reader.get("key-shared")
        assert hit is not None
        assert result_to_dict(hit) == result_to_dict(tiny_result)
        assert reader.disk_hits == 1
        # Promotion: the second read comes from the overlay.
        reader.get("key-shared")
        assert reader.disk_hits == 1

    def test_missing_filters_resolved_keys(self, tiny_result):
        store = ResultStore()
        store.put("a", tiny_result)
        assert store.missing(["a", "b", "c"]) == ["b", "c"]
        assert store.stats()["results"] == 1


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestFabricProtocol:
    def test_shard_job_parses_explicit_case_list(self):
        req = parse_job({"kind": "shard", "params": {
            "cases": [["bs", "k1", "45nm"], ["p2", "k13", "32nm"]],
            "budget": 10,
        }})
        assert req.param("cases") == (("bs", "k1", "45nm"),
                                      ("bs", "k13", "32nm"))  # p2 -> bs
        assert req.param("baseline") == "classic"
        assert req.param("seed") == 1

    @pytest.mark.parametrize("cases,needle", [
        ([], "non-empty"),
        ("bs/k1/45nm", "non-empty"),
        ([["bs", "k1"]], "cases[0]"),
        ([["nope", "k1", "45nm"]], "program"),
        ([["bs", "k1", "45nm"]] * (MAX_SHARD_CASES + 1), "at most"),
    ])
    def test_shard_case_list_is_validated(self, cases, needle):
        with pytest.raises(ProtocolError) as info:
            parse_job({"kind": "shard", "params": {"cases": cases}})
        assert needle in str(info.value)

    def test_sweep_kernel_is_part_of_the_fingerprint(self):
        plain = parse_job({"kind": "sweep", "params": {}})
        vector = parse_job({"kind": "sweep",
                            "params": {"kernel": "vectorized"}})
        assert plain.fingerprint() != vector.fingerprint()
        with pytest.raises(ProtocolError):
            parse_job({"kind": "sweep", "params": {"kernel": "fortran"}})

    def test_fabric_sweep_defaults_the_vectorized_kernel(self):
        tenant, params = parse_fabric_sweep({"params": TINY})
        assert tenant == "default"
        assert params["kernel"] == FABRIC_DEFAULT_KERNEL == "vectorized"
        # ... but python stays selectable per sweep.
        _, params = parse_fabric_sweep(
            {"params": dict(TINY, kernel="python")})
        assert params["kernel"] == "python"

    @pytest.mark.parametrize("tenant", ["", "UPPER", "a" * 65, "a b", 7])
    def test_bad_tenants_are_rejected(self, tenant):
        with pytest.raises(ProtocolError, match="tenant"):
            parse_fabric_sweep({"tenant": tenant, "params": TINY})

    def test_worker_registration_normalises_the_url(self):
        url, capacity = parse_worker_registration(
            {"url": "http://127.0.0.1:8100/", "capacity": 4})
        assert url == "http://127.0.0.1:8100"
        assert capacity == 4
        for bad in [{"url": "ftp://x:1"}, {"url": "http://"},
                    {"url": "http://x:1", "capacity": 0},
                    {"url": "http://x:1", "nope": 1}]:
            with pytest.raises((ProtocolError, ServiceError)):
                parse_worker_registration(bad)


# ----------------------------------------------------------------------
# fleet metrics merging
# ----------------------------------------------------------------------
class TestMergeExpositions:
    COORD = ("# HELP repro_jobs_total Jobs accepted.\n"
             "# TYPE repro_jobs_total counter\n"
             "repro_jobs_total 3\n")
    WORKER = ("# HELP repro_jobs_total Jobs accepted.\n"
              "# TYPE repro_jobs_total counter\n"
              "repro_jobs_total 5\n"
              "# HELP repro_job_seconds Latency.\n"
              "# TYPE repro_job_seconds histogram\n"
              'repro_job_seconds_bucket{le="1"} 2\n'
              "repro_job_seconds_sum 1.5\n"
              "repro_job_seconds_count 2\n")

    def test_identical_samples_sum_across_the_fleet(self):
        merged = merge_expositions([self.COORD, self.WORKER, self.WORKER])
        assert "repro_jobs_total 13" in merged
        assert merged.count("# HELP repro_jobs_total") == 1
        assert merged.count("# TYPE repro_jobs_total") == 1

    def test_histogram_series_group_under_their_base_metric(self):
        merged = merge_expositions([self.WORKER, self.WORKER])
        assert 'repro_job_seconds_bucket{le="1"} 4' in merged
        assert "repro_job_seconds_sum 3" in merged
        assert "repro_job_seconds_count 4" in merged
        assert merged.count("# TYPE repro_job_seconds histogram") == 1

    def test_single_exposition_round_trips(self):
        assert merge_expositions([self.COORD]).strip() == self.COORD.strip()


# ----------------------------------------------------------------------
# stream framing
# ----------------------------------------------------------------------
class TestStreamFraming:
    def test_chunk_round_trip_across_split_reads(self):
        events = [sse_event("case", {"i": i}) for i in range(3)]
        wire = b"".join(chunk(e) for e in events) + CHUNK_END
        # Feed the parser 1 byte at a time: no frame boundary survives.
        reads = [wire[i:i + 1] for i in range(len(wire))]
        assert list(iter_chunks(iter(reads))) == events

    def test_sse_events_need_not_align_with_chunks(self):
        blob = b"".join(sse_event("case", {"i": i}) for i in range(3))
        # Re-chunk at an awkward boundary (7 bytes).
        payloads = [blob[i:i + 7] for i in range(0, len(blob), 7)]
        parsed = list(iter_sse(iter(payloads)))
        assert parsed == [("case", {"i": i}) for i in range(3)]

    def test_truncated_stream_raises_instead_of_ending(self):
        wire = chunk(sse_event("case", {"i": 1}))  # no terminal chunk
        with pytest.raises(ConnectionError, match="truncated"):
            list(iter_chunks(iter([wire])))
        with pytest.raises(ConnectionError, match="truncated"):
            list(iter_chunks(iter([wire[: len(wire) // 2]])))

    def test_malformed_chunk_size_raises(self):
        with pytest.raises(ConnectionError, match="malformed"):
            list(iter_chunks(iter([b"zz\r\nxx\r\n"])))

    def test_sse_comments_and_empty_blocks_are_dropped(self):
        assert parse_sse_block(": keep-alive") is None
        assert parse_sse_block("event: progress") is None
        assert parse_sse_block("event: x\ndata: {\"a\":1}") == ("x", {"a": 1})
        assert parse_sse_block("data: not json") == ("message", "not json")


# ----------------------------------------------------------------------
# the client's stream parser against a real socket
# ----------------------------------------------------------------------
HEAD = (b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/event-stream\r\n"
        b"Transfer-Encoding: chunked\r\n"
        b"Connection: close\r\n\r\n")


def _canned_server(payload: bytes):
    """A one-shot TCP server that answers any request with ``payload``."""
    listener = socket.create_server(("127.0.0.1", 0))
    port = listener.getsockname()[1]

    def serve():
        conn, _ = listener.accept()
        conn.recv(65536)  # the request; content is irrelevant
        conn.sendall(payload)
        conn.close()
        listener.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return port, thread


class TestStreamSocket:
    def test_stream_yields_events_until_done(self):
        wire = HEAD + b"".join([
            chunk(sse_event("progress", {"completed": 0})),
            chunk(sse_event("case", {"program": "bs"})),
            chunk(sse_event("done", {"summary": {}})),
            CHUNK_END,
        ])
        port, thread = _canned_server(wire)
        client = ServiceClient("127.0.0.1", port, max_retries=0)
        events = list(client.stream_sweep("s1"))
        thread.join(timeout=5)
        assert [e for e, _ in events] == ["progress", "case", "done"]
        assert events[1][1] == {"program": "bs"}

    def test_mid_stream_death_raises_a_structured_error(self):
        # The server dies after one event: no terminal chunk, no done.
        wire = HEAD + chunk(sse_event("case", {"program": "bs"}))
        port, thread = _canned_server(wire)
        client = ServiceClient("127.0.0.1", port, max_retries=0)
        with pytest.raises(ServiceError, match="broke mid-sweep"):
            list(client.stream_sweep("s1"))
        thread.join(timeout=5)

    def test_clean_end_without_done_still_raises(self):
        # Proper chunked termination, but the sweep never finished.
        wire = (HEAD + chunk(sse_event("case", {"program": "bs"}))
                + CHUNK_END)
        port, thread = _canned_server(wire)
        client = ServiceClient("127.0.0.1", port, max_retries=0)
        with pytest.raises(ServiceError, match="without a 'done'"):
            list(client.stream_sweep("s1"))
        thread.join(timeout=5)

    def test_http_errors_surface_with_their_status(self):
        wire = (b"HTTP/1.1 404 Not Found\r\n"
                b"Content-Type: application/json\r\n"
                b"Connection: close\r\n\r\n"
                b'{"error": "no such sweep"}')
        port, thread = _canned_server(wire)
        client = ServiceClient("127.0.0.1", port, max_retries=0)
        with pytest.raises(ServiceError) as info:
            list(client.stream_sweep("nope"))
        thread.join(timeout=5)
        assert info.value.status == 404


# ----------------------------------------------------------------------
# multi-node cache hardening
# ----------------------------------------------------------------------
class TestCacheMultiNode:
    def test_prune_tolerates_peer_deletions_and_counts_them(
            self, tmp_path, tiny_result):
        cache = SweepDiskCache(tmp_path)
        cache.put("key-a", tiny_result)
        cache.put("key-b", tiny_result)
        real_root = cache.root

        class PhantomRecord:
            """A record a peer node evicted between scan and unlink."""

            def stat(self):
                return SimpleNamespace(st_mtime=0.0, st_size=10_000)

            def unlink(self):
                raise FileNotFoundError("peer got there first")

        class RacingRoot:
            def exists(self):
                return True

            def glob(self, pattern):
                yield PhantomRecord()
                yield from real_root.glob(pattern)

        cache.root = RacingRoot()
        removed = cache.prune(0)
        assert removed == 2  # the two real records
        assert cache.prune_races == 1
        assert cache.pruned == 2

    def test_put_survives_a_peer_removing_the_shard_dir(
            self, tmp_path, tiny_result, monkeypatch):
        import shutil
        import tempfile as tempfile_module

        cache = SweepDiskCache(tmp_path)
        real_mkstemp = tempfile_module.mkstemp
        raced = {"done": False}

        def racing_mkstemp(**kwargs):
            if not raced["done"]:
                raced["done"] = True
                shutil.rmtree(kwargs["dir"], ignore_errors=True)
                raise FileNotFoundError(kwargs["dir"])
            return real_mkstemp(**kwargs)

        monkeypatch.setattr(tempfile_module, "mkstemp", racing_mkstemp)
        cache.put("key-a", tiny_result)
        assert raced["done"]
        hit = cache.get("key-a")
        assert hit is not None
        assert result_to_dict(hit) == result_to_dict(tiny_result)


# ----------------------------------------------------------------------
# deficit-round-robin fairness (pure scheduling logic)
# ----------------------------------------------------------------------
def _shard(tenant: str, size: int, tag: str) -> Shard:
    keys = tuple(f"{tag}-{i}" for i in range(size))
    return Shard(id=f"{tag}", sweep_id="s", tenant=tenant,
                 indices=tuple(range(size)), keys=keys)


class TestDeficitRoundRobin:
    def test_small_tenant_is_not_starved_by_a_big_shard(self):
        coord = Coordinator(drr_quantum=4)
        coord._enqueue(_shard("big", 8, "big-0"))
        coord._enqueue(_shard("small", 2, "small-0"))
        coord._enqueue(_shard("small", 2, "small-1"))
        # The big tenant needs two quantum visits to afford its shard;
        # the small tenant dispatches meanwhile instead of waiting.
        picks = [coord._next_shard() for _ in range(4)]
        tenants = [p.tenant if p else None for p in picks]
        assert tenants[0] == "small"
        assert set(tenants[:3]) == {"small", "big"}
        assert tenants[3] is None  # queues drained
        assert coord._queued == 0

    def test_emptied_queue_forfeits_its_deficit(self):
        coord = Coordinator(drr_quantum=4)
        coord._enqueue(_shard("a", 1, "a-0"))
        assert coord._next_shard().tenant == "a"
        # The leftover 3 credits must not persist while idle.
        assert coord._deficit["a"] == 0.0

    def test_fifo_within_a_tenant(self):
        coord = Coordinator(drr_quantum=4)
        for i in range(3):
            coord._enqueue(_shard("a", 2, f"a-{i}"))
        assert [coord._next_shard().id for _ in range(3)] == [
            "a-0", "a-1", "a-2"]

    def test_requeue_to_front_preempts(self):
        coord = Coordinator(drr_quantum=4)
        coord._enqueue(_shard("a", 2, "a-0"))
        coord._enqueue(_shard("a", 2, "a-retry"), front=True)
        assert coord._next_shard().id == "a-retry"


# ----------------------------------------------------------------------
# end-to-end over real sockets
# ----------------------------------------------------------------------
class TestFabricEndToEnd:
    def test_plain_nodes_reject_fabric_routes(self):
        with BackgroundServer() as server:
            client = ServiceClient(server.host, server.port, max_retries=0)
            with pytest.raises(ServiceError) as info:
                client.submit_fabric_sweep(**TINY)
            assert info.value.status == 404
            assert "not a coordinator" in str(info.value)

    def test_submit_without_workers_is_503(self):
        with BackgroundServer(coordinator=True) as server:
            client = ServiceClient(server.host, server.port, max_retries=0)
            with pytest.raises(ServiceError) as info:
                client.submit_fabric_sweep(**TINY)
            assert info.value.status == 503

    def test_sweep_streams_merges_and_pre_resolves(self, tmp_path):
        with BackgroundServer(cache_dir=tmp_path, workers=1) as worker:
            with BackgroundServer(cache_dir=tmp_path, coordinator=True,
                                  worker_urls=[worker.url]) as coord:
                client = ServiceClient(coord.host, coord.port)
                record = client.submit_fabric_sweep(**TINY)
                assert record["state"] == "running"
                assert record["cases"] == 1

                events = list(client.stream_sweep(record["id"]))
                kinds = [e for e, _ in events]
                assert kinds[-1] == "done"
                cases = [d for e, d in events if e == "case"]
                assert [c["program"] for c in cases] == ["bs"]
                assert cases[0]["worker"] == worker.url

                document = client.fabric_result(record["id"])
                assert document["summary"]["cases"] == 1
                assert document["summary"]["failed"] == 0
                assert document["fabric"]["shards_completed"] >= 1

                # The same grid again resolves from the shared store
                # without touching the worker: done on arrival.
                again = client.submit_fabric_sweep(**TINY)
                assert again["state"] == "done"
                events = list(client.stream_sweep(again["id"]))
                case = next(d for e, d in events if e == "case")
                assert case["worker"] == "store"
                redo = client.fabric_result(again["id"])
                assert redo["cases"] == document["cases"]

                # Fleet metrics: the coordinator's /metrics folds the
                # worker's exposition into its own.
                merged = client.metrics()
                assert "fabric_shards_dispatched 1" in merged
                health = client.health()
                assert health["fabric"]["store"]["results"] == 1

    def test_fabric_results_match_local_run_bit_for_bit(self, tmp_path):
        from repro.experiments.report import sweep_to_json

        with BackgroundServer(cache_dir=tmp_path / "fleet",
                              workers=1) as worker:
            with BackgroundServer(coordinator=True,
                                  worker_urls=[worker.url]) as coord:
                client = ServiceClient(coord.host, coord.port)
                record = client.submit_fabric_sweep(**TINY)
                document = client.fabric_result(record["id"])
        local = run_sweep(
            SweepSpec(programs=("bs",), config_ids=("k1",),
                      techs=("45nm",), max_evaluations=10,
                      kernel="vectorized"),
            use_cache=False, workers=1,
        )
        assert document["cases"] == sweep_to_json(local)["cases"]

    def test_dead_worker_surfaces_structured_failures(self):
        # Reserve a port nobody listens on: every dispatch fails fast.
        probe = socket.create_server(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with BackgroundServer(
                coordinator=True,
                worker_urls=[f"http://127.0.0.1:{dead_port}"]) as coord:
            client = ServiceClient(coord.host, coord.port)
            record = client.submit_fabric_sweep(**TINY)
            events = list(client.stream_sweep(record["id"]))
            kinds = [e for e, _ in events]
            assert "failure" in kinds and kinds[-1] == "done"
            failure = next(d for e, d in events if e == "failure")
            assert failure["error_type"] == "ShardDispatchError"
            assert failure["transient"] is True
            assert failure["program"] == "bs"
            document = client.fabric_result(record["id"])
            assert document["summary"]["failed"] == 1
            assert document["failures"][0]["error_type"] == (
                "ShardDispatchError")
            health = client.health()
            workers = health["fabric"]["workers"]
            assert workers[0]["healthy"] is False
