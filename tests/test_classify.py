"""Tests for the classification pass (must/may/persistence over ACFG),
including end-to-end soundness against concrete execution."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import random_program
from repro.cache.classify import Classification, analyze_cache
from repro.cache.concrete import ConcreteCache
from repro.cache.config import CacheConfig
from repro.errors import AnalysisError
from repro.program.acfg import build_acfg
from repro.program.builder import ProgramBuilder
from repro.program.layout import AddressLayout
from repro.sim.executor import block_trace


class TestClassificationBasics:
    def test_straight_line_first_touch_miss_then_hit(self, straight_program, big_cache):
        acfg = build_acfg(straight_program, block_size=big_cache.block_size)
        analysis = analyze_cache(acfg, big_cache)
        seen_blocks = set()
        for vertex in acfg.ref_vertices():
            block = acfg.block_of(vertex.rid)
            classification = analysis.classification(vertex.rid)
            if block in seen_blocks:
                assert classification is Classification.ALWAYS_HIT
            else:
                assert classification in (
                    Classification.ALWAYS_MISS,
                    Classification.PERSISTENT,
                )
            seen_blocks.add(block)

    def test_loop_rest_context_hits_in_big_cache(self, loop_program, big_cache):
        acfg = build_acfg(loop_program, block_size=big_cache.block_size)
        analysis = analyze_cache(acfg, big_cache)
        rest_refs = [
            v
            for v in acfg.ref_vertices()
            if any(el.kind == "R" for el in v.context)
        ]
        assert rest_refs
        for vertex in rest_refs:
            assert analysis.classification(vertex.rid).is_hit

    def test_thrashing_loop_mostly_misses_in_tiny_cache(
        self, thrash_program, tiny_cache
    ):
        acfg = build_acfg(thrash_program, block_size=tiny_cache.block_size)
        analysis = analyze_cache(acfg, tiny_cache)
        rest_refs = [
            v
            for v in acfg.ref_vertices()
            if any(el.kind == "R" for el in v.context)
        ]
        non_hit = [
            v
            for v in rest_refs
            if not analysis.classification(v.rid).is_always_hit
        ]
        # the 320-byte body cannot live in a 256-byte cache
        assert len(non_hit) > len(rest_refs) / 4

    def test_conditional_first_touch_is_persistent(self, big_cache):
        b = ProgramBuilder("p")
        with b.loop(bound=10):
            b.code(2)
            with b.if_then(taken_prob=0.5):
                b.code(8)
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=big_cache.block_size)
        analysis = analyze_cache(acfg, big_cache)
        assert analysis.count(Classification.PERSISTENT) > 0

    def test_block_size_mismatch_rejected(self, loop_program, tiny_cache):
        acfg = build_acfg(loop_program, block_size=32)
        with pytest.raises(AnalysisError):
            analyze_cache(acfg, tiny_cache)

    def test_classification_of_non_ref_raises(self, loop_program, tiny_cache):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        analysis = analyze_cache(acfg, tiny_cache)
        with pytest.raises(AnalysisError):
            analysis.classification(acfg.source)

    def test_must_only_mode_has_no_always_miss(self, loop_program, tiny_cache):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        analysis = analyze_cache(
            acfg, tiny_cache, with_may=False, with_persistence=False
        )
        assert analysis.count(Classification.ALWAYS_MISS) == 0
        assert analysis.may is None

    def test_must_only_always_hits_match_full_mode(self, loop_program, tiny_cache):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        fast = analyze_cache(acfg, tiny_cache, with_may=False)
        full = analyze_cache(acfg, tiny_cache)
        for vertex in acfg.ref_vertices():
            assert (
                fast.classification(vertex.rid).is_always_hit
                == full.classification(vertex.rid).is_always_hit
            )

    def test_hit_ratio_static_bounds(self, loop_program, big_cache):
        acfg = build_acfg(loop_program, block_size=big_cache.block_size)
        analysis = analyze_cache(acfg, big_cache)
        assert 0.0 <= analysis.hit_ratio_static() <= 1.0


def _concrete_outcomes(cfg, config, seed):
    """Replay one concrete run; returns {(uid, occurrence): hit}."""
    layout = AddressLayout(cfg)
    cache = ConcreteCache(config)
    outcomes = []
    for block in block_trace(cfg, seed=seed):
        for instr in block.instructions:
            mem_block = config.block_of_address(layout.address(instr.uid))
            outcomes.append((instr.uid, cache.access(mem_block)))
    return outcomes


class TestSoundnessAgainstConcrete:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_programs_classification_sound(self, seed):
        """AH references never miss concretely; AM references never hit.

        The concrete trace visits (instruction, dynamic occurrence)
        pairs; an instruction classified AH in *every* context it
        appears in must never miss, and AM in every context must never
        hit.  (Per-context matching would need context tracking in the
        executor; the all-contexts projection is the sound comparison.)
        """
        config = CacheConfig(2, 16, 256)
        cfg = random_program(seed, target_size=90)
        acfg = build_acfg(cfg, block_size=config.block_size)
        analysis = analyze_cache(acfg, config)
        per_uid = {}
        for vertex in acfg.ref_vertices():
            per_uid.setdefault(vertex.instr.uid, set()).add(
                analysis.classification(vertex.rid)
            )
        for run_seed in (0, 1, 2):
            for uid, hit in _concrete_outcomes(cfg, config, run_seed):
                classes = per_uid[uid]
                if classes == {Classification.ALWAYS_HIT}:
                    assert hit, f"AH uid {uid} missed (program seed {seed})"
                if classes == {Classification.ALWAYS_MISS}:
                    assert not hit, f"AM uid {uid} hit (program seed {seed})"

    @pytest.mark.parametrize("seed", range(8))
    def test_persistent_uids_miss_at_most_once(self, seed):
        """A uid persistent in all contexts misses at most once per run."""
        config = CacheConfig(2, 16, 256)
        cfg = random_program(seed + 100, target_size=90)
        acfg = build_acfg(cfg, block_size=config.block_size)
        analysis = analyze_cache(acfg, config)
        persistent_uids = set()
        for vertex in acfg.ref_vertices():
            uid = vertex.instr.uid
            if analysis.classification(vertex.rid) in (
                Classification.ALWAYS_HIT,
                Classification.PERSISTENT,
            ):
                persistent_uids.add(uid)
            else:
                persistent_uids.discard(uid)
        # Project to memory blocks: a persistent block misses <= 1 time.
        layout = AddressLayout(cfg)
        block_of_uid = {
            i.uid: config.block_of_address(layout.address(i.uid))
            for i in cfg.instructions()
        }
        persistent_blocks = {block_of_uid[uid] for uid in persistent_uids}
        # only blocks ALL of whose uids are persistent qualify
        for uid, block in block_of_uid.items():
            if uid not in persistent_uids and block in persistent_blocks:
                persistent_blocks.discard(block)
        cache = ConcreteCache(config)
        miss_count = {}
        for block in block_trace(cfg, seed=3):
            for instr in block.instructions:
                mem_block = block_of_uid[instr.uid]
                if not cache.access(mem_block):
                    miss_count[mem_block] = miss_count.get(mem_block, 0) + 1
        for block in persistent_blocks:
            assert miss_count.get(block, 0) <= 1
