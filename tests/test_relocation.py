"""Tests for insertion-point mapping and relocation accounting."""

from __future__ import annotations

import pytest

from repro.analysis.wcet import analyze_wcet
from repro.core.relocation import (
    InsertionPoint,
    insertion_point_after,
    moved_blocks,
    relocation_cost,
)
from repro.errors import OptimizationError
from repro.program.acfg import build_acfg
from repro.program.builder import ProgramBuilder
from repro.program.instructions import InstrKind
from repro.program.layout import AddressLayout, MemoryMap


class TestInsertionPoint:
    def test_mid_block_inserts_right_after(self, straight_program):
        acfg = build_acfg(straight_program, block_size=16)
        refs = [v for v in acfg.ref_vertices()]
        vertex = refs[5]
        point = insertion_point_after(acfg, vertex.rid)
        assert point == InsertionPoint(vertex.block_name, vertex.index_in_block + 1)

    def test_after_branch_moves_to_next_block(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        branch = next(
            v
            for v in acfg.ref_vertices()
            if v.instr.kind is InstrKind.BRANCH
        )
        point = insertion_point_after(acfg, branch.rid)
        assert point is not None
        assert point.block_name != branch.block_name or point.index == 0

    def test_end_of_program_returns_none(self, straight_program):
        acfg = build_acfg(straight_program, block_size=16)
        last_ref = [v for v in acfg.ref_vertices()][-1]
        assert last_ref.instr.kind is InstrKind.RETURN
        assert insertion_point_after(acfg, last_ref.rid) is None

    def test_non_ref_rejected(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        with pytest.raises(OptimizationError):
            insertion_point_after(acfg, acfg.source)


class TestMovedBlocks:
    def test_insertion_moves_downstream_blocks_only(self, loop_program):
        old_layout = AddressLayout(loop_program)
        old_map = MemoryMap(old_layout, 16)
        target = loop_program.blocks[4].instructions[0]
        loop_program.insert_prefetch(loop_program.blocks[2].name, 0, target.uid)
        new_map = MemoryMap(AddressLayout(loop_program), 16)
        moved = moved_blocks(old_map, new_map)
        insertion_addr = old_layout.block_start(loop_program.blocks[2].name)
        for instr in old_layout.instructions_in_order():
            if old_layout.address(instr.uid) < insertion_addr:
                assert instr.uid not in moved

    def test_no_change_no_moves(self, loop_program):
        mmap = MemoryMap(AddressLayout(loop_program), 16)
        assert moved_blocks(mmap, mmap) == frozenset()


class TestRelocationCost:
    def test_rcost_measures_other_references_only(self, tiny_cache, timing):
        b = ProgramBuilder("p")
        b.code(30)
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=tiny_cache.block_size)
        before = analyze_wcet(acfg, tiny_cache, timing)
        target = cfg.blocks[1].instructions[20]
        prefetch = cfg.insert_prefetch(cfg.blocks[1].name, 2, target.uid)
        acfg2 = build_acfg(cfg, block_size=tiny_cache.block_size)
        after = analyze_wcet(acfg2, tiny_cache, timing)
        rcost = relocation_cost(before, after, prefetch.uid, target.uid)
        # total delta = rcost + (prefetch + target contributions delta)
        def part(result, uids):
            return sum(
                result.tau_of(v.rid)
                for v in result.acfg.ref_vertices()
                if v.instr.uid in uids
            )

        delta_total = after.solution.objective - before.solution.objective
        delta_special = part(after, {prefetch.uid, target.uid}) - part(
            before, {prefetch.uid, target.uid}
        )
        assert rcost == pytest.approx(delta_total - delta_special)
