"""Tests for the hardware prefetcher baselines."""

from __future__ import annotations

import pytest

from repro.analysis.timing import TimingModel
from repro.cache.config import CacheConfig
from repro.errors import SimulationError
from repro.sim.machine import simulate
from repro.sim.prefetchers import (
    NextLinePrefetcher,
    POLICY_ALWAYS,
    POLICY_ON_MISS,
    POLICY_TAGGED,
    TargetPrefetcher,
    WrongPathPrefetcher,
)


class TestNextLine:
    def test_always_prefetches_every_access(self):
        pf = NextLinePrefetcher(POLICY_ALWAYS)
        assert list(pf.observe(0, 0, hit=True)) == [1]
        assert list(pf.observe(4, 0, hit=False)) == [1]
        assert pf.probes == 2

    def test_on_miss_only_fires_on_misses(self):
        pf = NextLinePrefetcher(POLICY_ON_MISS)
        assert list(pf.observe(0, 0, hit=True)) == []
        assert list(pf.observe(0, 0, hit=False)) == [1]

    def test_tagged_fires_once_per_block(self):
        pf = NextLinePrefetcher(POLICY_TAGGED)
        assert list(pf.observe(0, 0, hit=False)) == [1]
        assert list(pf.observe(0, 0, hit=True)) == []
        assert list(pf.observe(16, 1, hit=False)) == [2]

    def test_degree_extends_window(self):
        pf = NextLinePrefetcher(POLICY_ALWAYS, degree=3)
        assert list(pf.observe(0, 10, hit=True)) == [11, 12, 13]

    def test_reset(self):
        pf = NextLinePrefetcher(POLICY_TAGGED)
        pf.observe(0, 0, hit=False)
        pf.reset()
        assert pf.probes == 0
        assert list(pf.observe(0, 0, hit=False)) == [1]

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            NextLinePrefetcher("bogus")
        with pytest.raises(SimulationError):
            NextLinePrefetcher(POLICY_ALWAYS, degree=0)


class TestTarget:
    def test_learns_discontinuity_and_predicts(self):
        pf = TargetPrefetcher()
        pf.observe(0, 10, hit=True)
        pf.observe(0, 20, hit=True)  # jump 10 -> 20 learned
        pf.observe(0, 10, hit=True)  # revisit source
        assert list(pf.observe(0, 10, hit=True)) == [20]

    def test_sequential_flow_learns_nothing(self):
        pf = TargetPrefetcher()
        pf.observe(0, 10, hit=True)
        pf.observe(0, 11, hit=True)
        pf.observe(0, 10, hit=True)
        assert list(pf.observe(0, 10, hit=True)) == []

    def test_rpt_capacity_evicts_lru(self):
        pf = TargetPrefetcher(rpt_entries=1)
        pf.observe(0, 10, hit=True)
        pf.observe(0, 20, hit=True)  # learn 10 -> 20
        pf.observe(0, 30, hit=True)  # learn 20 -> 30, evicts 10 -> 20
        pf.observe(0, 10, hit=True)
        assert list(pf.observe(0, 10, hit=True)) == []

    def test_invalid_rpt_size(self):
        with pytest.raises(SimulationError):
            TargetPrefetcher(rpt_entries=0)


class TestWrongPath:
    def test_predicts_both_target_and_fallthrough(self):
        pf = WrongPathPrefetcher()
        pf.observe(0, 10, hit=True)
        pf.observe(0, 20, hit=True)  # learn 10 -> (20, 11)
        pf.observe(0, 10, hit=True)
        predicted = list(pf.observe(0, 10, hit=True))
        assert predicted == [20, 11]


class TestIntegrationWithMachine:
    def test_next_line_reduces_misses_on_straight_code(
        self, straight_program, timing
    ):
        config = CacheConfig(2, 16, 256)
        base = simulate(straight_program, config, timing, seed=0)
        pf = simulate(
            straight_program,
            config,
            timing,
            seed=0,
            prefetcher=NextLinePrefetcher(POLICY_ON_MISS, degree=2),
        )
        assert pf.memory_cycles < base.memory_cycles
        assert pf.hw_table_probes > 0

    def test_target_prefetcher_helps_loops(self, thrash_program, timing):
        config = CacheConfig(2, 16, 256)
        base = simulate(thrash_program, config, timing, seed=1)
        pf = simulate(
            thrash_program,
            config,
            timing,
            seed=1,
            prefetcher=TargetPrefetcher(),
        )
        # target prefetching never increases misses on this workload
        assert pf.demand_misses <= base.demand_misses

    def test_useless_prefetches_cost_transfers(self, loop_program, timing):
        config = CacheConfig(4, 16, 8192)  # everything fits anyway
        pf = simulate(
            loop_program,
            config,
            timing,
            seed=1,
            prefetcher=NextLinePrefetcher(POLICY_ALWAYS, degree=2),
        )
        assert pf.prefetch_transfers >= pf.useful_prefetches
