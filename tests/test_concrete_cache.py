"""Tests for the concrete LRU cache, including LRU-order properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.concrete import ConcreteCache
from repro.cache.config import CacheConfig
from repro.errors import SimulationError


@pytest.fixture
def cache():
    return ConcreteCache(CacheConfig(2, 16, 64))  # 2 sets, 2-way


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self, cache):
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self, cache):
        # blocks 0, 2, 4 all map to set 0 of a 2-way cache
        cache.access(0)
        cache.access(2)
        cache.access(4)  # evicts 0
        assert not cache.contains(0)
        assert cache.contains(2)
        assert cache.contains(4)

    def test_touch_refreshes_lru(self, cache):
        cache.access(0)
        cache.access(2)
        cache.access(0)  # 2 is now LRU
        cache.access(4)  # evicts 2
        assert cache.contains(0)
        assert not cache.contains(2)

    def test_contains_does_not_update_lru(self, cache):
        cache.access(0)
        cache.access(2)
        cache.contains(0)  # must NOT refresh 0
        cache.access(4)  # evicts LRU == 0
        assert not cache.contains(0)

    def test_set_isolation(self, cache):
        cache.access(0)  # set 0
        cache.access(1)  # set 1
        cache.access(2)  # set 0
        cache.access(4)  # set 0, evicts 0
        assert cache.contains(1)

    def test_miss_rate(self, cache):
        assert cache.miss_rate == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == 0.5


class TestInstall:
    def test_install_counts_fill_not_access(self, cache):
        evicted = cache.install(0)
        assert evicted is None
        assert cache.accesses == 0
        assert cache.fills == 1
        assert cache.contains(0)

    def test_install_returns_evicted_block(self, cache):
        cache.install(0)
        cache.install(2)
        evicted = cache.install(4)
        assert evicted == 0

    def test_install_existing_promotes_to_mru(self, cache):
        cache.install(0)
        cache.install(2)
        cache.install(0)  # promote
        evicted = cache.install(4)
        assert evicted == 2


class TestFillAccounting:
    """Regression: `fills` historically counted prefetch installs only."""

    def test_demand_miss_counts_demand_fill(self, cache):
        cache.access(0)  # miss -> fill
        cache.access(0)  # hit -> no fill
        assert cache.demand_fills == 1
        assert cache.prefetch_fills == 0
        assert cache.fills == 1

    def test_install_counts_prefetch_fill(self, cache):
        cache.install(0)
        assert cache.prefetch_fills == 1
        assert cache.demand_fills == 0
        assert cache.fills == 1

    def test_install_of_resident_block_is_not_a_fill(self, cache):
        cache.access(0)
        cache.install(0)  # already resident: promote only
        assert cache.fills == 1
        assert cache.demand_fills == 1
        assert cache.prefetch_fills == 0

    def test_fills_is_sum_of_both_causes(self, cache):
        cache.access(0)  # demand fill
        cache.install(2)  # prefetch fill
        cache.access(4)  # demand fill (evicts 0)
        assert cache.demand_fills == 2
        assert cache.prefetch_fills == 1
        assert cache.fills == 3

    def test_reset_counters_zeros_both_causes(self, cache):
        cache.access(0)
        cache.install(2)
        cache.reset_counters()
        assert cache.demand_fills == 0
        assert cache.prefetch_fills == 0
        assert cache.fills == 0

    def test_clone_copies_both_fill_counters(self, cache):
        cache.access(0)
        cache.install(2)
        copy = cache.clone()
        assert copy.demand_fills == 1
        assert copy.prefetch_fills == 1
        copy.access(4)
        assert cache.demand_fills == 1  # original unaffected


class TestInspection:
    def test_set_contents_mru_order(self, cache):
        cache.access(0)
        cache.access(2)
        assert cache.set_contents(0) == (2, 0)

    def test_set_contents_bounds(self, cache):
        with pytest.raises(SimulationError):
            cache.set_contents(5)

    def test_cached_blocks_sorted(self, cache):
        cache.access(3)
        cache.access(0)
        assert cache.cached_blocks() == (0, 3)

    def test_age_of(self, cache):
        cache.access(0)
        cache.access(2)
        assert cache.age_of(2) == 0
        assert cache.age_of(0) == 1
        assert cache.age_of(4) is None

    def test_clone_independence(self, cache):
        cache.access(0)
        copy = cache.clone()
        copy.access(2)
        copy.access(4)
        assert cache.contains(0)
        assert cache.accesses == 1

    def test_flush_and_reset(self, cache):
        cache.access(0)
        cache.reset_counters()
        assert cache.accesses == 0
        assert cache.contains(0)
        cache.flush()
        assert not cache.contains(0)


class TestLRUProperties:
    @given(
        blocks=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=200),
        assoc=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_most_recent_distinct_blocks_always_hit(self, blocks, assoc):
        """The `assoc` most recently used blocks of a set are cached."""
        config = CacheConfig(assoc, 16, assoc * 16 * 4)  # 4 sets
        cache = ConcreteCache(config)
        history = []
        for block in blocks:
            cache.access(block)
            history.append(block)
            # compute per-set recency and check containment
            set_index = config.set_index(block)
            same_set = [b for b in history if config.set_index(b) == set_index]
            recent = []
            for b in reversed(same_set):
                if b not in recent:
                    recent.append(b)
                if len(recent) == assoc:
                    break
            for b in recent:
                assert cache.contains(b)

    @given(
        blocks=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=100)
    )
    @settings(max_examples=40, deadline=None)
    def test_fully_associative_never_evicts_below_capacity(self, blocks):
        config = CacheConfig(4, 16, 64)  # one 4-way set
        cache = ConcreteCache(config)
        for block in blocks:
            cache.access(block)
        distinct = len(set(blocks))
        assert len(cache.cached_blocks()) == min(distinct, 4)

    @given(
        blocks=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=120)
    )
    @settings(max_examples=40, deadline=None)
    def test_counters_are_consistent(self, blocks):
        cache = ConcreteCache(CacheConfig(2, 16, 128))
        for block in blocks:
            cache.access(block)
        assert cache.hits + cache.misses == len(blocks)
        assert 0.0 <= cache.miss_rate <= 1.0
