"""Tests for the parallel sweep engine and the persistent disk cache.

The contract under test: ``run_sweep(spec, workers=N)`` returns exactly
the serial path's results, in grid order, for any N; the disk cache
round-trips results bit-exactly and invalidates when any input of the
computation changes.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigError, ExperimentError
from repro.experiments.cache import (
    CODE_VERSION,
    SweepDiskCache,
    resolve_cache_dir,
    resolve_cache_max_bytes,
    result_from_dict,
    result_to_dict,
    usecase_key,
)
from repro.experiments.metrics import SweepMetrics
from repro.experiments.sweep import (
    SweepSpec,
    resolve_workers,
    run_sweep,
)
from repro.experiments.usecase import UseCase

#: Two fast programs, one config, one tech: 2 use cases per sweep.
TINY_SPEC = SweepSpec(
    programs=("bs", "prime"),
    config_ids=("k1",),
    techs=("45nm",),
    seed=1,
    max_evaluations=10,
)


@pytest.fixture(autouse=True)
def _no_ambient_cache(monkeypatch):
    """Keep the environment from injecting a disk cache or workers."""
    monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_SWEEP_CACHE_MAX_BYTES", raising=False)


@pytest.fixture(scope="module")
def serial_results():
    """The serial reference run (no caches involved)."""
    return run_sweep(TINY_SPEC, use_cache=False, workers=1)


def _dicts(results):
    return [result_to_dict(r) for r in results]


class TestParallelEquivalence:
    def test_parallel_matches_serial_in_order_and_fields(self, serial_results):
        metrics = SweepMetrics()
        parallel = run_sweep(
            TINY_SPEC, use_cache=False, workers=2, metrics=metrics
        )
        assert [r.usecase for r in parallel] == TINY_SPEC.usecases()
        assert _dicts(parallel) == _dicts(serial_results)

    def test_parallel_run_uses_other_processes(self):
        metrics = SweepMetrics()
        run_sweep(TINY_SPEC, use_cache=False, workers=2, metrics=metrics)
        if not metrics.parallel:
            pytest.skip("platform cannot run a process pool")
        pids = metrics.worker_pids()
        assert pids, "no computed use case recorded a worker pid"
        assert os.getpid() not in pids
        assert metrics.workers == 2

    def test_progress_fires_in_grid_order(self, serial_results):
        seen = []
        run_sweep(
            TINY_SPEC,
            progress=lambda uc, r: seen.append(uc),
            use_cache=False,
            workers=2,
        )
        assert seen == TINY_SPEC.usecases()

    def test_workers_resolution(self, monkeypatch):
        assert resolve_workers(3, pending=10) == 3
        assert resolve_workers(8, pending=2) == 2  # clamped to work
        assert resolve_workers(4, pending=0) == 1  # nothing to do
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "5")
        assert resolve_workers(None, pending=100) == 5
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "banana")
        with pytest.raises(ExperimentError):
            resolve_workers(None, pending=4)
        with pytest.raises(ExperimentError):
            resolve_workers(0, pending=4)


class TestDiskCache:
    def test_round_trip_is_bit_exact(self, tmp_path, serial_results):
        metrics_cold = SweepMetrics()
        first = run_sweep(
            TINY_SPEC,
            use_cache=False,
            workers=1,
            cache_dir=tmp_path,
            metrics=metrics_cold,
        )
        assert metrics_cold.computed == TINY_SPEC.size
        metrics_warm = SweepMetrics()
        second = run_sweep(
            TINY_SPEC,
            use_cache=False,
            workers=1,
            cache_dir=tmp_path,
            metrics=metrics_warm,
        )
        assert metrics_warm.disk_hits == TINY_SPEC.size
        assert metrics_warm.computed == 0
        # bit-exact: every float, count and nested report field agrees
        assert _dicts(second) == _dicts(first) == _dicts(serial_results)

    def test_serializer_round_trip(self, serial_results):
        result = serial_results[0]
        clone = result_from_dict(result_to_dict(result))
        assert result_to_dict(clone) == result_to_dict(result)
        assert clone.usecase == result.usecase
        assert clone.report.tau_final == result.report.tau_final
        assert clone.wcet_ratio == result.wcet_ratio

    def test_key_invalidates_on_seed_options_and_version(self):
        usecase = UseCase("bs", "k1", "45nm")
        options = TINY_SPEC.optimizer_options()
        base = usecase_key(usecase, 1, options)
        assert base == usecase_key(usecase, 1, options)  # deterministic
        assert base != usecase_key(usecase, 2, options)
        other_options = SweepSpec(
            programs=("bs",),
            config_ids=("k1",),
            techs=("45nm",),
            max_evaluations=99,
        ).optimizer_options()
        assert base != usecase_key(usecase, 1, other_options)
        baseline_options = SweepSpec(
            programs=("bs",),
            config_ids=("k1",),
            techs=("45nm",),
            max_evaluations=10,
            baseline="persistence",
        ).optimizer_options()
        assert base != usecase_key(usecase, 1, baseline_options)
        assert base != usecase_key(usecase, 1, options, code_version="older")
        assert base != usecase_key(
            UseCase("bs", "k1", "32nm"), 1, options
        )

    def test_corrupt_record_is_a_miss_and_gets_evicted(
        self, tmp_path, serial_results
    ):
        cache = SweepDiskCache(tmp_path)
        key = usecase_key(
            UseCase("bs", "k1", "45nm"), 1, TINY_SPEC.optimizer_options()
        )
        cache.put(key, serial_results[0])
        assert len(cache) == 1
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None
        assert cache.misses == 1
        # the unreadable file was deleted, not left to fail every run
        assert cache.discarded == 1
        assert not cache.path_for(key).exists()
        assert len(cache) == 0
        # overwriting heals the record
        cache.put(key, serial_results[0])
        restored = cache.get(key)
        assert restored is not None
        assert result_to_dict(restored) == result_to_dict(serial_results[0])

    def test_truncated_record_is_evicted(self, tmp_path, serial_results):
        cache = SweepDiskCache(tmp_path)
        key = usecase_key(
            UseCase("bs", "k1", "45nm"), 1, TINY_SPEC.optimizer_options()
        )
        path = cache.put(key, serial_results[0])
        # a torn write from a crashed pre-atomic-rename producer
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        assert cache.get(key) is None
        assert cache.discarded == 1
        assert not path.exists()

    def test_stale_format_record_is_evicted(self, tmp_path, serial_results):
        cache = SweepDiskCache(tmp_path)
        key = usecase_key(
            UseCase("bs", "k1", "45nm"), 1, TINY_SPEC.optimizer_options()
        )
        path = cache.put(key, serial_results[0])
        import json as _json

        record = _json.loads(path.read_text())
        record["format"] = 0
        path.write_text(_json.dumps(record))
        assert cache.get(key) is None
        assert cache.discarded == 1
        assert not path.exists()

    def test_missing_record_is_a_plain_miss(self, tmp_path):
        cache = SweepDiskCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1
        assert cache.discarded == 0

    def test_clear_removes_records(self, tmp_path, serial_results):
        cache = SweepDiskCache(tmp_path)
        key = usecase_key(
            UseCase("bs", "k1", "45nm"), 1, TINY_SPEC.optimizer_options()
        )
        cache.put(key, serial_results[0])
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_resolve_cache_dir(self, monkeypatch, tmp_path):
        assert resolve_cache_dir(tmp_path) == tmp_path
        assert resolve_cache_dir("off") is None
        assert resolve_cache_dir("0") is None
        assert resolve_cache_dir(None) is None  # env unset via fixture
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir(None) == tmp_path / "env"
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", "off")
        assert resolve_cache_dir(None) is None

    def test_code_version_is_part_of_the_contract(self):
        # The tag exists and is non-empty; bumping it must change keys.
        assert isinstance(CODE_VERSION, str) and CODE_VERSION


class TestWorkerConfigErrors:
    @pytest.mark.parametrize("value", ["0", "-2", "2.5", "banana"])
    def test_bad_env_values_raise_config_error(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", value)
        with pytest.raises(ConfigError, match="REPRO_SWEEP_WORKERS"):
            resolve_workers(None, pending=4)

    def test_empty_env_value_means_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "")
        assert resolve_workers(None, pending=1) == 1

    @pytest.mark.parametrize("value", [0, -1, True, 2.0, "3"])
    def test_bad_explicit_values_raise_config_error(self, value):
        with pytest.raises(ConfigError):
            resolve_workers(value, pending=4)

    def test_config_error_is_an_experiment_error(self):
        # callers catching the broader class keep working
        assert issubclass(ConfigError, ExperimentError)


class TestCacheSizeCap:
    def _filled_cache(self, tmp_path, serial_results):
        """A cache of two records with strictly increasing mtimes."""
        cache = SweepDiskCache(tmp_path)
        options = TINY_SPEC.optimizer_options()
        keys = [
            usecase_key(usecase, 1, options)
            for usecase in TINY_SPEC.usecases()
        ]
        for key, result, age in zip(keys, serial_results, (200, 100)):
            cache.put(key, result)
            stamp = os.stat(cache.path_for(key)).st_mtime - age
            os.utime(cache.path_for(key), (stamp, stamp))
        return cache, keys

    def test_total_bytes_sums_the_records(self, tmp_path, serial_results):
        cache, keys = self._filled_cache(tmp_path, serial_results)
        expected = sum(
            os.path.getsize(cache.path_for(key)) for key in keys
        )
        assert cache.total_bytes() == expected
        assert SweepDiskCache(tmp_path / "missing").total_bytes() == 0

    def test_prune_evicts_oldest_first(self, tmp_path, serial_results):
        cache, keys = self._filled_cache(tmp_path, serial_results)
        newest_size = os.path.getsize(cache.path_for(keys[1]))
        removed = cache.prune(newest_size)
        assert removed == 1
        assert cache.get(keys[0]) is None      # the old record went
        assert cache.get(keys[1]) is not None  # the fresh one survived
        assert cache.total_bytes() <= newest_size

    def test_prune_is_a_noop_under_the_cap(self, tmp_path, serial_results):
        cache, keys = self._filled_cache(tmp_path, serial_results)
        assert cache.prune(cache.total_bytes()) == 0
        assert len(cache) == len(keys)

    def test_prune_zero_evicts_everything(self, tmp_path, serial_results):
        cache, keys = self._filled_cache(tmp_path, serial_results)
        assert cache.prune(0) == len(keys)
        assert cache.total_bytes() == 0

    def test_resolve_cache_max_bytes(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE_MAX_BYTES", raising=False)
        assert resolve_cache_max_bytes(None) is None
        assert resolve_cache_max_bytes(12345) == 12345
        assert resolve_cache_max_bytes("12345") == 12345
        for alias in ("", "0", "off", "none"):
            assert resolve_cache_max_bytes(alias) is None
        monkeypatch.setenv("REPRO_SWEEP_CACHE_MAX_BYTES", "4096")
        assert resolve_cache_max_bytes(None) == 4096
        assert resolve_cache_max_bytes(99) == 99  # explicit beats env
        monkeypatch.setenv("REPRO_SWEEP_CACHE_MAX_BYTES", "lots")
        with pytest.raises(ConfigError, match="REPRO_SWEEP_CACHE_MAX_BYTES"):
            resolve_cache_max_bytes(None)
        with pytest.raises(ConfigError):
            resolve_cache_max_bytes(-5)

    def test_put_prunes_opportunistically(self, tmp_path, serial_results):
        # size the cap to exactly one record: every put enforces it
        # immediately (prune_every=1), so a long sweep can never blow
        # far past the budget mid-run
        probe = SweepDiskCache(tmp_path / "probe")
        options = TINY_SPEC.optimizer_options()
        first_key = usecase_key(TINY_SPEC.usecases()[0], 1, options)
        one_record = os.path.getsize(probe.put(first_key, serial_results[0]))
        cache = SweepDiskCache(
            tmp_path / "capped", max_bytes=one_record, prune_every=1
        )
        for usecase, result in zip(TINY_SPEC.usecases(), serial_results):
            cache.put(usecase_key(usecase, 1, options), result)
            assert cache.total_bytes() <= one_record
            assert len(cache) <= 1

    def test_put_without_cap_never_prunes(self, tmp_path, serial_results):
        cache = SweepDiskCache(tmp_path, prune_every=1)
        options = TINY_SPEC.optimizer_options()
        for usecase, result in zip(TINY_SPEC.usecases(), serial_results):
            cache.put(usecase_key(usecase, 1, options), result)
        assert len(cache) == TINY_SPEC.size

    def test_prune_every_batches_the_scans(self, tmp_path, serial_results):
        # with prune_every above the put count the cap is not enforced
        # until the threshold is crossed (the end-of-sweep prune covers
        # the tail)
        cache = SweepDiskCache(tmp_path, max_bytes=1, prune_every=99)
        options = TINY_SPEC.optimizer_options()
        for usecase, result in zip(TINY_SPEC.usecases(), serial_results):
            cache.put(usecase_key(usecase, 1, options), result)
        assert len(cache) == TINY_SPEC.size  # untouched so far
        cache.prune(1)
        assert len(cache) == 0

    def test_run_sweep_honours_the_env_cap(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "capped"
        run_sweep(TINY_SPEC, use_cache=False, workers=1,
                  cache_dir=cache_dir)
        cache = SweepDiskCache(cache_dir)
        assert len(cache) == TINY_SPEC.size
        # rerun with a cap that fits exactly the largest single record:
        # the sweep prunes down to it after writing
        cap = max(
            os.path.getsize(record)
            for record in cache_dir.glob("*/*.json")
        )
        monkeypatch.setenv("REPRO_SWEEP_CACHE_MAX_BYTES", str(cap))
        run_sweep(TINY_SPEC, use_cache=False, workers=1,
                  cache_dir=cache_dir)
        assert cache.total_bytes() <= cap
        assert len(cache) == 1
