"""Tests for the end-to-end WCET driver."""

from __future__ import annotations

import pytest

from repro.analysis.timing import TimingModel
from repro.analysis.wcet import analyze_wcet, compute_ref_times
from repro.cache.classify import Classification, analyze_cache
from repro.errors import AnalysisError
from repro.program.acfg import build_acfg
from repro.program.builder import ProgramBuilder


class TestTimingModel:
    def test_derived_quantities(self, timing):
        assert timing.miss_cycles == 31
        assert timing.prefetch_latency == 30

    def test_validation(self):
        with pytest.raises(AnalysisError):
            TimingModel(hit_cycles=0)
        with pytest.raises(AnalysisError):
            TimingModel(miss_penalty_cycles=0)
        with pytest.raises(AnalysisError):
            TimingModel(prefetch_issue_cycles=-1)


class TestComputeRefTimes:
    def test_hit_and_miss_charging(self, loop_program, big_cache, timing):
        acfg = build_acfg(loop_program, block_size=big_cache.block_size)
        analysis = analyze_cache(acfg, big_cache)
        times = compute_ref_times(acfg, analysis, timing)
        for vertex in acfg.ref_vertices():
            classification = analysis.classification(vertex.rid)
            if classification.is_hit:
                assert times[vertex.rid] == timing.hit_cycles
            else:
                assert times[vertex.rid] == timing.miss_cycles

    def test_non_refs_cost_nothing(self, loop_program, big_cache, timing):
        acfg = build_acfg(loop_program, block_size=big_cache.block_size)
        analysis = analyze_cache(acfg, big_cache)
        times = compute_ref_times(acfg, analysis, timing)
        for vertex in acfg.iter_topological():
            if not vertex.is_ref:
                assert times[vertex.rid] == 0.0

    def test_prefetch_adds_issue_slot(self, loop_program, big_cache, timing):
        target = loop_program.blocks[3].instructions[0]
        loop_program.insert_prefetch(loop_program.blocks[1].name, 0, target.uid)
        acfg = build_acfg(loop_program, block_size=big_cache.block_size)
        analysis = analyze_cache(acfg, big_cache)
        times = compute_ref_times(acfg, analysis, timing)
        pf = next(v for v in acfg.ref_vertices() if v.is_prefetch)
        assert times[pf.rid] >= timing.hit_cycles + timing.prefetch_issue_cycles


class TestWCETResult:
    def test_tau_w_matches_manual_sum(self, loop_program, tiny_cache, timing):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        result = analyze_wcet(acfg, tiny_cache, timing)
        manual = sum(
            result.tau_of(v.rid) for v in acfg.ref_vertices()
        ) + result.persistence_penalty
        assert result.tau_w == pytest.approx(manual)

    def test_backends_agree_end_to_end(self, nested_program, tiny_cache, timing):
        acfg = build_acfg(nested_program, block_size=tiny_cache.block_size)
        structural = analyze_wcet(acfg, tiny_cache, timing, backend="structural")
        ilp = analyze_wcet(acfg, tiny_cache, timing, backend="ilp")
        assert structural.tau_w == pytest.approx(ilp.tau_w)

    def test_unknown_backend_rejected(self, loop_program, tiny_cache, timing):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        with pytest.raises(AnalysisError):
            analyze_wcet(acfg, tiny_cache, timing, backend="magic")

    def test_miss_rate_in_bounds(self, loop_program, tiny_cache, timing):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        result = analyze_wcet(acfg, tiny_cache, timing)
        assert 0.0 <= result.wcet_miss_rate <= 1.0
        assert result.wcet_path_fetches > 0

    def test_bigger_cache_never_worse(self, thrash_program, timing):
        from repro.cache.config import CacheConfig

        taus = []
        for capacity in (256, 1024, 4096):
            config = CacheConfig(2, 16, capacity)
            acfg = build_acfg(thrash_program, block_size=16)
            taus.append(analyze_wcet(acfg, config, timing).tau_w)
        assert taus[0] >= taus[1] >= taus[2]

    def test_persistence_tightens_the_bound(self, timing, big_cache):
        b = ProgramBuilder("p")
        with b.loop(bound=20):
            b.code(2)
            with b.if_then(taken_prob=0.5):
                b.code(8)
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=big_cache.block_size)
        loose_cache = analyze_cache(acfg, big_cache, with_persistence=False)
        tight_cache = analyze_cache(acfg, big_cache, with_persistence=True)
        loose = analyze_wcet(acfg, big_cache, timing, cache_analysis=loose_cache)
        tight = analyze_wcet(acfg, big_cache, timing, cache_analysis=tight_cache)
        assert tight.tau_w < loose.tau_w

    def test_persistent_blocks_charged_once(self, timing, big_cache):
        b = ProgramBuilder("p")
        with b.loop(bound=20):
            b.code(2)
            with b.if_then(taken_prob=0.5):
                b.code(8)
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=big_cache.block_size)
        result = analyze_wcet(acfg, big_cache, timing)
        assert result.persistent_charged_blocks
        assert result.persistence_penalty == len(
            result.persistent_charged_blocks
        ) * float(timing.miss_penalty_cycles)

    def test_misses_cache_stable(self, loop_program, tiny_cache, timing):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        result = analyze_wcet(acfg, tiny_cache, timing)
        assert result.wcet_path_misses == result.wcet_path_misses
