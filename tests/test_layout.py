"""Tests for address layout and the memory-block view."""

from __future__ import annotations

import pytest

from repro.errors import LayoutError
from repro.program.builder import ProgramBuilder
from repro.program.layout import AddressLayout, MemoryMap, compute_layout


class TestAddressLayout:
    def test_addresses_are_contiguous(self, straight_program):
        layout = AddressLayout(straight_program)
        addresses = [
            layout.address(i.uid) for i in straight_program.instructions()
        ]
        assert addresses == list(range(0, 4 * len(addresses), 4))

    def test_base_address_offsets_everything(self, straight_program):
        layout = AddressLayout(straight_program, base_address=0x1000)
        first = next(iter(straight_program.instructions()))
        assert layout.address(first.uid) == 0x1000

    def test_negative_base_rejected(self, straight_program):
        with pytest.raises(LayoutError):
            AddressLayout(straight_program, base_address=-4)

    def test_code_size(self, straight_program):
        layout = AddressLayout(straight_program)
        assert layout.code_size == straight_program.instruction_count * 4

    def test_block_start_matches_first_instruction(self, loop_program):
        layout = AddressLayout(loop_program)
        for block in loop_program.blocks:
            if block.instructions:
                assert layout.block_start(block.name) == layout.address(
                    block.instructions[0].uid
                )

    def test_staleness_tracking(self, loop_program):
        layout = AddressLayout(loop_program)
        assert not layout.is_stale()
        target = loop_program.blocks[2].instructions[0]
        loop_program.insert_prefetch(loop_program.blocks[1].name, 0, target.uid)
        assert layout.is_stale()

    def test_unknown_uid_raises(self, straight_program):
        layout = AddressLayout(straight_program)
        with pytest.raises(LayoutError):
            layout.address(424242)

    def test_insertion_shifts_downstream_addresses(self, loop_program):
        before = AddressLayout(loop_program)
        target_block = loop_program.blocks[3]
        victim = target_block.instructions[0]
        addr_before = before.address(victim.uid)
        loop_program.insert_prefetch(loop_program.blocks[1].name, 0, victim.uid)
        after = AddressLayout(loop_program)
        assert after.address(victim.uid) == addr_before + 4

    def test_insertion_preserves_upstream_addresses(self, loop_program):
        before = AddressLayout(loop_program)
        first = loop_program.blocks[0].instructions[0]
        addr_before = before.address(first.uid)
        target = loop_program.blocks[3].instructions[0]
        loop_program.insert_prefetch(loop_program.blocks[2].name, 0, target.uid)
        after = AddressLayout(loop_program)
        assert after.address(first.uid) == addr_before


class TestMemoryMap:
    def test_block_of_matches_address_division(self, straight_program):
        layout, mmap = compute_layout(straight_program, block_size=16)
        for instr in straight_program.instructions():
            assert mmap.block_of(instr.uid) == layout.address(instr.uid) // 16

    def test_first_item_is_lowest_address(self, straight_program):
        _, mmap = compute_layout(straight_program, block_size=16)
        for block_id in mmap.blocks():
            first = mmap.first_item(block_id)
            items = mmap.items_in_block(block_id)
            assert items[0] == first

    def test_items_per_block_count(self, straight_program):
        _, mmap = compute_layout(straight_program, block_size=16)
        # 16-byte blocks hold four 4-byte instructions
        sizes = [len(mmap.items_in_block(b)) for b in mmap.blocks()]
        assert all(size <= 4 for size in sizes)
        assert sum(sizes) == straight_program.instruction_count

    def test_block_size_must_be_power_of_two(self, straight_program):
        layout = AddressLayout(straight_program)
        with pytest.raises(LayoutError):
            MemoryMap(layout, 24)
        with pytest.raises(LayoutError):
            MemoryMap(layout, 0)

    def test_unknown_block_raises(self, straight_program):
        _, mmap = compute_layout(straight_program, block_size=16)
        with pytest.raises(LayoutError):
            mmap.first_item(10_000)

    def test_address_of_block(self, straight_program):
        _, mmap = compute_layout(straight_program, block_size=32)
        assert mmap.address_of_block(3) == 96

    def test_compute_layout_without_block_size(self, straight_program):
        layout, mmap = compute_layout(straight_program)
        assert mmap is None
        assert layout.code_size > 0
