"""Tests for the optimization algorithm (Algorithm 3), including the
Theorem-1 property over random programs."""

from __future__ import annotations

import pytest

from repro.analysis.wcet import analyze_wcet
from repro.bench.generator import random_program
from repro.cache.config import CacheConfig
from repro.core.guarantees import (
    verify_prefetch_equivalence,
    verify_wcet_guarantee,
)
from repro.core.optimizer import OptimizerOptions, optimize
from repro.program.acfg import build_acfg
from repro.program.builder import ProgramBuilder
from repro.sim.machine import simulate


def _thrashy_program():
    b = ProgramBuilder("target")
    b.code(4)
    with b.loop(bound=12, sim_iterations=10):
        b.code(90)  # 360 B body on a 256 B cache
    b.code(2)
    return b.build()


class TestBasicOperation:
    def test_finds_prefetches_on_thrashing_loop(self, tiny_cache, timing):
        cfg = _thrashy_program()
        optimized, report = optimize(cfg, tiny_cache, timing)
        assert report.prefetch_count > 0
        assert report.tau_final < report.tau_original
        assert report.misses_final < report.misses_original

    def test_original_untouched_by_default(self, tiny_cache, timing):
        cfg = _thrashy_program()
        before = cfg.instruction_count
        optimize(cfg, tiny_cache, timing)
        assert cfg.instruction_count == before
        assert cfg.prefetch_count == 0

    def test_inplace_mutates(self, tiny_cache, timing):
        cfg = _thrashy_program()
        optimized, report = optimize(cfg, tiny_cache, timing, inplace=True)
        assert optimized is cfg
        assert cfg.prefetch_count == report.prefetch_count

    def test_no_opportunity_no_change(self, big_cache, timing):
        b = ProgramBuilder("tiny")
        b.code(3)
        cfg = b.build()
        optimized, report = optimize(cfg, big_cache, timing)
        assert report.prefetch_count == 0
        assert report.tau_final == report.tau_original

    def test_max_insertions_respected(self, tiny_cache, timing):
        cfg = _thrashy_program()
        options = OptimizerOptions(max_insertions=2)
        _, report = optimize(cfg, tiny_cache, timing, options=options)
        assert report.prefetch_count <= 2

    def test_max_evaluations_budget(self, tiny_cache, timing):
        cfg = _thrashy_program()
        options = OptimizerOptions(max_evaluations=3)
        _, report = optimize(cfg, tiny_cache, timing, options=options)
        assert report.candidates_evaluated <= 3

    def test_report_bookkeeping(self, tiny_cache, timing):
        cfg = _thrashy_program()
        optimized, report = optimize(cfg, tiny_cache, timing)
        assert report.prefetch_count == len(report.inserted)
        assert (
            report.static_instructions_final
            == report.static_instructions_original + report.prefetch_count
        )
        assert report.passes >= 1
        for record in report.inserted:
            assert record.tau_after <= record.tau_before + 1e-6
            assert record.misses_after < record.misses_before
            assert record.terms.effective

    def test_reported_taus_match_reanalysis(self, tiny_cache, timing):
        cfg = _thrashy_program()
        optimized, report = optimize(cfg, tiny_cache, timing)
        acfg = build_acfg(optimized, tiny_cache.block_size)
        recomputed = analyze_wcet(acfg, tiny_cache, timing)
        assert recomputed.tau_w == pytest.approx(report.tau_final)


class TestConditions:
    """Conditions 1-3 of Section 2.3 on a conflict-heavy program."""

    def test_condition1_wcet_non_increase(self, tiny_cache, timing):
        cfg = _thrashy_program()
        optimized, report = optimize(cfg, tiny_cache, timing)
        check = verify_wcet_guarantee(cfg, optimized, tiny_cache, timing)
        assert check.theorem1_holds

    def test_condition2_miss_reduction(self, tiny_cache, timing):
        cfg = _thrashy_program()
        optimized, report = optimize(cfg, tiny_cache, timing)
        check = verify_wcet_guarantee(cfg, optimized, tiny_cache, timing)
        assert check.condition2_holds
        assert check.misses_optimized < check.misses_original

    def test_condition3_acet_improves_in_simulation(self, tiny_cache, timing):
        cfg = _thrashy_program()
        optimized, report = optimize(cfg, tiny_cache, timing)
        for seed in (1, 5, 9):
            base = simulate(cfg, tiny_cache, timing, seed=seed)
            opt = simulate(optimized, tiny_cache, timing, seed=seed)
            assert opt.memory_cycles <= base.memory_cycles

    def test_prefetch_equivalence(self, tiny_cache, timing):
        cfg = _thrashy_program()
        optimized, _ = optimize(cfg, tiny_cache, timing)
        assert verify_prefetch_equivalence(cfg, optimized)

    def test_all_prefetches_effective(self, tiny_cache, timing):
        cfg = _thrashy_program()
        optimized, _ = optimize(cfg, tiny_cache, timing)
        check = verify_wcet_guarantee(cfg, optimized, tiny_cache, timing)
        assert check.all_effective


class TestAblationSwitches:
    def test_disable_prefilter_still_safe(self, tiny_cache, timing):
        cfg = _thrashy_program()
        options = OptimizerOptions(use_prefilter=False, max_evaluations=50)
        optimized, report = optimize(cfg, tiny_cache, timing, options=options)
        assert verify_wcet_guarantee(cfg, optimized, tiny_cache, timing).theorem1_holds

    def test_disable_effectiveness_may_insert_late_prefetches(
        self, tiny_cache, timing
    ):
        cfg = _thrashy_program()
        options = OptimizerOptions(require_effectiveness=False)
        optimized, report = optimize(cfg, tiny_cache, timing, options=options)
        # gates on tau/misses still hold
        assert report.tau_final <= report.tau_original

    def test_disable_wcet_gate_loses_the_guarantee_check(self, tiny_cache, timing):
        cfg = _thrashy_program()
        options = OptimizerOptions(
            require_wcet_nonincrease=False, verify_guarantee=False
        )
        optimized, report = optimize(cfg, tiny_cache, timing, options=options)
        # without the gate the optimizer may or may not regress; the
        # report must still be internally consistent
        assert report.prefetch_count == optimized.prefetch_count


class TestTheorem1Property:
    @pytest.mark.parametrize("seed", range(14))
    def test_random_programs_never_regress(self, seed, timing):
        """Theorem 1 re-derived from scratch for a family of programs
        and two cache shapes."""
        cfg = random_program(seed + 900, target_size=80)
        for config in (CacheConfig(1, 16, 128), CacheConfig(2, 16, 256)):
            optimized, report = optimize(cfg, config, timing)
            check = verify_wcet_guarantee(cfg, optimized, config, timing)
            assert check.theorem1_holds
            assert check.condition2_holds
            assert verify_prefetch_equivalence(cfg, optimized)

    @pytest.mark.parametrize("seed", range(6))
    def test_optimizing_twice_is_stable(self, seed, timing, tiny_cache):
        """A second optimization pass over an optimized program must not
        break anything (idempotence up to further improvement)."""
        cfg = random_program(seed + 2000, target_size=60)
        once, report1 = optimize(cfg, tiny_cache, timing)
        twice, report2 = optimize(once, tiny_cache, timing)
        assert report2.tau_final <= report1.tau_final + 1e-6
