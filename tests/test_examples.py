"""Integration tests: every example script must run end to end.

The examples double as executable documentation; these tests run their
``main()`` entry points (with fast arguments where they accept any) so
a regression in the public API surfaces immediately.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart_fast_args(self, monkeypatch, capsys):
        monkeypatch.setattr(sys, "argv", ["quickstart.py", "bs", "k7", "45nm"])
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "Theorem 1 holds: True" in out

    def test_paper_walkthrough(self, capsys):
        _load("paper_walkthrough").main()
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 2" in out and "Figure 6" in out
        assert "prefetches" in out

    def test_rtos_firmware(self, capsys):
        _load("rtos_firmware").main()
        out = capsys.readouterr().out
        assert "reclaimed margin" in out

    def test_capacity_downsizing_fast_args(self, monkeypatch, capsys):
        monkeypatch.setattr(
            sys, "argv", ["capacity_downsizing.py", "bs", "k7", "45nm"]
        )
        _load("capacity_downsizing").main()
        out = capsys.readouterr().out
        assert "original, full cache" in out

    def test_prefetcher_shootout_fast_args(self, monkeypatch, capsys):
        monkeypatch.setattr(sys, "argv", ["prefetcher_shootout.py", "crc", "k7"])
        _load("prefetcher_shootout").main()
        out = capsys.readouterr().out
        assert "sw prefetch (paper" in out
        assert "cache locking" in out

    def test_dsp_data_cache(self, capsys):
        _load("dsp_data_cache").main()
        out = capsys.readouterr().out
        assert "data prefetches inserted" in out
