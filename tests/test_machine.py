"""Tests for the memory-system timing machine and `simulate`."""

from __future__ import annotations

import pytest

from repro.analysis.timing import TimingModel
from repro.cache.config import CacheConfig
from repro.program.builder import ProgramBuilder
from repro.sim.machine import MemorySystem, simulate


@pytest.fixture
def system(timing):
    return MemorySystem(CacheConfig(2, 16, 64), timing)


class TestFetchAccounting:
    def test_miss_then_hit_cycles(self, system, timing):
        assert system.fetch(0) == timing.miss_cycles
        assert system.fetch(4) == timing.hit_cycles  # same block
        assert system.result.fetches == 2
        assert system.result.demand_misses == 1
        assert system.result.hits == 1

    def test_time_accumulates(self, system, timing):
        system.fetch(0)
        system.fetch(4)
        assert system.now == timing.miss_cycles + timing.hit_cycles

    def test_prefetch_instruction_pays_issue_slot(self, system, timing):
        cycles = system.fetch(0, is_prefetch_instr=True)
        assert cycles == timing.miss_cycles + timing.prefetch_issue_cycles


class TestPrefetchPort:
    def test_completed_prefetch_turns_miss_into_hit(self, system, timing):
        system.issue_prefetch(5)
        assert system.result.prefetch_transfers == 1
        # burn enough time for the transfer to finish
        for i in range(timing.prefetch_latency + 1):
            system.fetch(0)
        cycles = system.fetch(5 * 16)
        assert cycles == timing.hit_cycles
        assert system.result.useful_prefetches == 1

    def test_in_flight_block_partially_stalls(self, system, timing):
        system.issue_prefetch(5)
        system.fetch(0)  # one miss: 31 cycles pass of 30 needed... latency=30
        # demand the block immediately: remaining = max(0, 30 - 31) = 0 here,
        # so use a fresh system for a real partial stall
        system2 = MemorySystem(CacheConfig(2, 16, 64), timing)
        system2.issue_prefetch(5)
        system2.fetch(0 * 16)  # miss: now = 31 >= completion 30
        system3 = MemorySystem(CacheConfig(2, 16, 64), timing)
        system3.issue_prefetch(5)
        system3.fetch(64)  # hit? no: cold miss. now=31 > 30
        # construct exact partial: issue, then fetch a hit (1 cycle), then demand
        system4 = MemorySystem(CacheConfig(2, 16, 64), timing)
        system4.fetch(0)  # warm block 0 (31 cycles)
        system4.issue_prefetch(5)
        system4.fetch(0)  # hit, 1 cycle; now completion - now = 29
        cycles = system4.fetch(5 * 16)
        assert cycles == timing.hit_cycles + (timing.prefetch_latency - 1)
        assert system4.result.stall_cycles_hidden == pytest.approx(1.0)

    def test_redundant_prefetch_dropped(self, system):
        system.fetch(0)
        assert system.issue_prefetch(0) is False
        system.issue_prefetch(9)
        assert system.issue_prefetch(9) is False
        assert system.result.prefetch_transfers == 1

    def test_prefetched_block_can_be_evicted_before_use(self, system, timing):
        config = system.config  # 2 sets, 2-way
        system.issue_prefetch(2)  # set 0
        for _ in range(3):
            system.fetch(0)  # let it land
        # evict it with two other set-0 blocks
        system.fetch(4 * 16)
        system.fetch(8 * 16)
        cycles = system.fetch(2 * 16)
        assert cycles == timing.miss_cycles
        assert system.result.useful_prefetches == 0


class TestSimulate:
    def test_counts_are_consistent(self, loop_program, tiny_cache, timing):
        result = simulate(loop_program, tiny_cache, timing, seed=2)
        result.validate()
        assert result.fetches == result.hits + result.demand_misses
        assert result.memory_cycles >= result.fetches  # >= 1 cycle each

    def test_prefetch_instructions_counted(self, loop_program, tiny_cache, timing):
        target = loop_program.blocks[3].instructions[0]
        loop_program.insert_prefetch(loop_program.blocks[1].name, 0, target.uid)
        result = simulate(loop_program, tiny_cache, timing, seed=2)
        assert result.prefetch_instructions > 0

    def test_trace_recording(self, straight_program, tiny_cache, timing):
        result = simulate(
            straight_program, tiny_cache, timing, seed=0, record_trace=True
        )
        assert len(result.trace) == result.fetches
        assert result.trace[0].hit is False  # cold start

    def test_trace_off_by_default(self, straight_program, tiny_cache, timing):
        result = simulate(straight_program, tiny_cache, timing, seed=0)
        assert result.trace == []

    def test_repeat_warms_the_cache(self, loop_program, big_cache, timing):
        once = simulate(loop_program, big_cache, timing, seed=1)
        twice = simulate(loop_program, big_cache, timing, seed=1, repeat=2)
        # second run is all hits in a big cache: misses don't double
        assert twice.demand_misses == once.demand_misses

    def test_bigger_cache_never_more_misses(self, thrash_program, timing):
        small = simulate(
            thrash_program, CacheConfig(2, 16, 256), timing, seed=1
        )
        big = simulate(thrash_program, CacheConfig(2, 16, 4096), timing, seed=1)
        assert big.demand_misses <= small.demand_misses

    def test_base_address_shifts_blocks_not_counts(
        self, straight_program, tiny_cache, timing
    ):
        a = simulate(straight_program, tiny_cache, timing, seed=0)
        b = simulate(
            straight_program, tiny_cache, timing, seed=0, base_address=1 << 16
        )
        assert a.fetches == b.fetches
        assert a.demand_misses == b.demand_misses  # alignment preserved
