"""Tests for the optimizer's update/join machinery (Û_e, J_SE) and the
reverse analysis."""

from __future__ import annotations

import pytest

from repro.analysis.wcet import analyze_wcet
from repro.cache.abstract import MustState
from repro.core.join import select_join_predecessor
from repro.core.update import (
    apply_update,
    collect_optimization_states,
    collect_reverse_events,
)
from repro.errors import OptimizationError
from repro.program.acfg import VertexKind, build_acfg
from repro.program.builder import ProgramBuilder


class TestApplyUpdate:
    def test_records_replacement(self, thrash_program, tiny_cache):
        acfg = build_acfg(thrash_program, block_size=tiny_cache.block_size)
        # drive a state to conflict: blocks b, b+16 share a set
        state = MustState(tiny_cache)
        victim = None
        events_seen = []
        for vertex in acfg.ref_vertices():
            state, events = apply_update(state, acfg, vertex.rid)
            events_seen.extend(events)
        assert events_seen  # the 640 B body must overflow 256 B
        for event in events_seen:
            assert event.evictor_rid >= 0

    def test_non_ref_vertices_are_identity(self, loop_program, tiny_cache):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        state = MustState(tiny_cache).update(3)
        join = next(v for v in acfg.vertices if v.kind is VertexKind.JOIN)
        new_state, events = apply_update(state, acfg, join.rid)
        assert new_state == state
        assert events == []


class TestJoinSelection:
    def test_prefers_wcet_path_predecessor(self, timing, tiny_cache):
        b = ProgramBuilder("p")
        with b.if_else() as arms:
            with arms.then_():
                b.code(2)
            with arms.else_():
                b.code(30)  # the WCET arm
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=tiny_cache.block_size)
        wcet = analyze_wcet(acfg, tiny_cache, timing)
        join = next(v for v in acfg.vertices if v.kind is VertexKind.JOIN)
        chosen = select_join_predecessor(acfg, wcet.solution, join.rid)
        assert wcet.solution.on_path[chosen]

    def test_rejects_non_join(self, loop_program, tiny_cache, timing):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        wcet = analyze_wcet(acfg, tiny_cache, timing)
        ref = next(iter(acfg.ref_vertices()))
        with pytest.raises(OptimizationError):
            select_join_predecessor(acfg, wcet.solution, ref.rid)


class TestForwardStates:
    def test_every_vertex_gets_a_state(self, loop_program, tiny_cache, timing):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        wcet = analyze_wcet(acfg, tiny_cache, timing)
        states, events = collect_optimization_states(
            acfg, tiny_cache, wcet.solution
        )
        assert all(s is not None for s in states)

    def test_forward_state_matches_wcet_path_replay(
        self, straight_program, tiny_cache, timing
    ):
        """On straight-line code the optimization state IS the concrete
        cache along the single path."""
        acfg = build_acfg(straight_program, block_size=tiny_cache.block_size)
        wcet = analyze_wcet(acfg, tiny_cache, timing)
        states, _ = collect_optimization_states(acfg, tiny_cache, wcet.solution)
        replay = MustState(tiny_cache)
        for vertex in acfg.ref_vertices():
            assert states[vertex.rid] == replay
            replay = replay.update(acfg.block_of(vertex.rid))


class TestReverseAnalysis:
    def test_no_events_when_everything_fits(self, loop_program, big_cache, timing):
        acfg = build_acfg(loop_program, block_size=big_cache.block_size)
        wcet = analyze_wcet(acfg, big_cache, timing)
        events = collect_reverse_events(acfg, big_cache, wcet.solution)
        drops = [e for e in events if e.insert_after_rid != acfg.source]
        assert drops == []  # only cold-miss residual candidates remain

    def test_cold_candidates_cover_all_touched_blocks(
        self, straight_program, big_cache, timing
    ):
        acfg = build_acfg(straight_program, block_size=big_cache.block_size)
        wcet = analyze_wcet(acfg, big_cache, timing)
        events = collect_reverse_events(acfg, big_cache, wcet.solution)
        residual = {e.dropped_block for e in events if e.insert_after_rid == acfg.source}
        touched = {acfg.block_of(v.rid) for v in acfg.ref_vertices()}
        # the cache dwarfs the program: every block survives to the source
        assert residual == touched

    def test_thrash_produces_wrapped_events(self, thrash_program, tiny_cache, timing):
        acfg = build_acfg(thrash_program, block_size=tiny_cache.block_size)
        wcet = analyze_wcet(acfg, tiny_cache, timing)
        events = collect_reverse_events(acfg, tiny_cache, wcet.solution)
        assert any(e.wrapped for e in events)
        for event in events:
            if event.wrapped:
                assert event.loop_join_rid >= 0

    def test_earliest_survivable_point_semantics(self, tiny_cache, timing):
        """Direct check of the working-set argument: for the classic
        A B C A pattern in a 2-way set, the drop event for A's block
        sits at B — the earliest point from which a prefetched A
        survives (C is the only distinct competitor left)."""
        from repro.cache.config import CacheConfig

        config = CacheConfig(2, 16, 32)  # ONE 2-way set
        b = ProgramBuilder("p")
        b.code(20)
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=16)
        wcet = analyze_wcet(acfg, config, timing)
        events = collect_reverse_events(acfg, config, wcet.solution)
        # Program blocks: 0,1,2,3,4,5 all map to set 0.  Reverse walk
        # keeps the 2 next-used; drops happen mid-program, not at uses.
        drop_events = [e for e in events if e.insert_after_rid != acfg.source]
        assert drop_events
        for event in drop_events:
            # the dropped block is referenced after the drop point
            uses = [
                v.rid
                for v in acfg.ref_vertices()
                if acfg.block_of(v.rid) == event.dropped_block
                and v.rid > event.insert_after_rid
            ]
            assert uses, "reverse analysis only drops blocks with later uses"
