"""Tests for the experiment harness (use cases, sweeps, figures, tables).

These run the real pipeline on small grids (tiny programs, few
configurations) so they stay fast while exercising every code path the
benchmark harness uses.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import figure3, figure4, figure5, figure7, figure8
from repro.experiments.report import (
    PAPER_HEADLINE,
    format_percent,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure7,
    render_figure8,
)
from repro.experiments.sweep import (
    SweepSpec,
    average,
    default_grid,
    full_grid,
    group_by_capacity,
    run_sweep,
)
from repro.experiments.tables import evaluation_matrix, table1, table2
from repro.experiments.usecase import (
    UseCase,
    run_cross_capacity,
    run_usecase,
)

#: A deliberately small grid: 3 fast programs, 2 capacities, 1 tech.
SMALL_SPEC = SweepSpec(
    programs=("bs", "prime", "sqrt"),
    config_ids=("k1", "k7"),
    techs=("45nm",),
    seed=1,
    max_evaluations=40,
)


@pytest.fixture(scope="module")
def small_results():
    return run_sweep(SMALL_SPEC)


class TestUseCase:
    def test_resolves_config(self):
        usecase = UseCase("bs", "k14", "45nm")
        assert usecase.cache_config().capacity == 1024

    def test_unknown_config_rejected(self):
        with pytest.raises(ExperimentError):
            UseCase("bs", "k99", "45nm").cache_config()

    def test_run_usecase_produces_paired_measurements(self):
        result = run_usecase(UseCase("bs", "k1", "45nm"))
        assert result.original.tau_w > 0
        assert result.optimized.tau_w <= result.original.tau_w
        assert result.wcet_ratio <= 1.0 + 1e-9
        assert result.original.energy.total_j > 0
        assert 0 <= result.original.miss_rate_acet <= 1

    def test_instruction_ratio_reflects_prefetches(self):
        result = run_usecase(UseCase("fdct", "k1", "45nm"))
        if result.report.prefetch_count:
            assert result.instruction_ratio > 1.0
        else:
            assert result.instruction_ratio == pytest.approx(1.0)

    def test_cross_capacity_uses_smaller_cache(self):
        result = run_cross_capacity(UseCase("bs", "k7", "45nm"), 0.5)
        assert result.report.config.capacity == 256

    def test_cross_capacity_factor_validated(self):
        with pytest.raises(ExperimentError):
            run_cross_capacity(UseCase("bs", "k7", "45nm"), 1.5)


class TestSweep:
    def test_grid_expansion_order(self):
        cases = SMALL_SPEC.usecases()
        assert len(cases) == SMALL_SPEC.size == 3 * 2 * 1
        assert cases[0] == UseCase("bs", "k1", "45nm")

    def test_results_align_with_grid(self, small_results):
        assert len(small_results) == SMALL_SPEC.size
        for case, result in zip(SMALL_SPEC.usecases(), small_results):
            assert result.usecase == case

    def test_sweep_cache_returns_equal_results(self, small_results):
        again = run_sweep(SMALL_SPEC)
        assert again is not small_results  # fresh list per call
        assert [r.usecase for r in again] == [r.usecase for r in small_results]
        assert [r.original.tau_w for r in again] == [
            r.original.tau_w for r in small_results
        ]

    def test_mutating_cached_results_cannot_poison_the_cache(self):
        """Regression: a caller clearing/sorting its result list used to
        corrupt ``_SWEEP_CACHE`` for every later figure benchmark."""
        spec = SweepSpec(("bs",), ("k1",), ("45nm",), max_evaluations=10)
        first = run_sweep(spec)
        assert len(first) == 1
        first.clear()
        second = run_sweep(spec)
        assert len(second) == 1
        assert second[0].usecase == UseCase("bs", "k1", "45nm")
        second.append("junk")
        assert len(run_sweep(spec)) == 1

    def test_progress_callback(self):
        spec = SweepSpec(("bs",), ("k1",), ("45nm",), max_evaluations=10)
        seen = []
        run_sweep(spec, progress=lambda uc, r: seen.append(uc), use_cache=False)
        assert len(seen) == 1

    def test_group_by_capacity(self, small_results):
        buckets = group_by_capacity(small_results)
        assert set(buckets) == {256, 512}
        assert all(len(bucket) == 3 for bucket in buckets.values())

    def test_average(self):
        assert average([1.0, 2.0, 3.0]) == 2.0
        assert average([]) == 0.0

    def test_default_grid_shape(self):
        spec = default_grid()
        assert len(spec.programs) == 37
        assert len(spec.config_ids) == 6
        assert spec.techs == ("45nm", "32nm")

    def test_full_grid_matches_paper(self):
        spec = full_grid()
        assert spec.size == 2664


class TestFigures:
    def test_figure3_shapes_and_direction(self, small_results):
        data = figure3(SMALL_SPEC)
        assert set(data.energy.points) == {256, 512}
        # improvements can never be negative on WCET (Theorem 1 average)
        assert data.overall_wcet >= 0.0
        rendered = render_figure3(data)
        assert "Figure 3" in rendered and "paper 17.4%" in rendered

    def test_figure4_miss_rates_never_increase(self, small_results):
        data = figure4(SMALL_SPEC)
        for capacity in data.before.points:
            assert data.after.points[capacity] <= data.before.points[capacity] + 1e-9
        assert "Figure 4" in render_figure4(data)

    def test_figure5_cross_capacity(self):
        data = figure5(0.5, SMALL_SPEC)
        assert data.capacity_factor == 0.5
        assert data.energy.points  # at least one capacity feasible
        assert "Figure 5" in render_figure5(data)

    def test_figure7_all_ratios_at_most_one(self):
        spec = SweepSpec(
            programs=("bs", "prime"),
            config_ids=("k1",),
            techs=("32nm",),
            max_evaluations=40,
        )
        data = figure7(spec)
        assert data.all_below_one
        assert len(data.ratios) == 2
        assert "Figure 7" in render_figure7(data)

    def test_figure8_overhead_small(self, small_results):
        data = figure8(SMALL_SPEC)
        assert data.max_increase >= 0.0
        assert data.max_increase < 0.2
        assert "Figure 8" in render_figure8(data)


class TestTablesAndReport:
    def test_table1_rows(self):
        rows = table1()
        assert len(rows) == 37
        assert rows[0].program_id == "p1" and rows[0].name == "adpcm"

    def test_table2_rows(self):
        rows = table2()
        assert len(rows) == 36
        assert rows[0].config_id == "k1"
        assert (rows[0].associativity, rows[0].block_size, rows[0].capacity) == (
            1,
            16,
            256,
        )

    def test_evaluation_matrix(self):
        assert evaluation_matrix() == (37, 36, 2, 2664)

    def test_format_percent(self):
        assert format_percent(0.112).strip() == "11.2%"

    def test_paper_headline_constants(self):
        assert PAPER_HEADLINE["energy_improvement"] == 0.112
        assert PAPER_HEADLINE["wcet_improvement"] == 0.174
