"""Property-based tests for the data-cache extension."""

from __future__ import annotations

import pytest

from repro.analysis.timing import TimingModel
from repro.bench.generator import random_data_program
from repro.cache.config import CacheConfig
from repro.data.analysis import combined_wcet
from repro.data.machine import simulate_split
from repro.data.prefetch import optimize_data
from repro.program.acfg import build_acfg

ICACHE = CacheConfig(2, 16, 512)
DCACHE = CacheConfig(2, 16, 128)
TIMING = TimingModel(1, 24, 1)


class TestRandomDataPrograms:
    @pytest.mark.parametrize("seed", range(10))
    def test_programs_build_and_analyse(self, seed):
        cfg = random_data_program(seed)
        cfg.validate()
        acfg = build_acfg(cfg, ICACHE.block_size)
        combined = combined_wcet(acfg, ICACHE, DCACHE, TIMING)
        assert combined.tau_w >= combined.instruction.tau_w

    @pytest.mark.parametrize("seed", range(10))
    def test_wcet_data_misses_dominate_simulation(self, seed):
        """The worst-case data-miss bound covers every concrete run."""
        cfg = random_data_program(seed + 40)
        acfg = build_acfg(cfg, ICACHE.block_size)
        combined = combined_wcet(acfg, ICACHE, DCACHE, TIMING)
        for run_seed in (0, 1):
            sim = simulate_split(cfg, ICACHE, DCACHE, TIMING, seed=run_seed)
            assert combined.data_misses >= sim.data.demand_misses

    @pytest.mark.parametrize("seed", range(8))
    def test_data_prefetching_never_regresses(self, seed):
        """Theorem 1 extended to the split-cache system, re-derived on
        random data programs."""
        cfg = random_data_program(seed + 90)
        optimized, report = optimize_data(
            cfg, ICACHE, DCACHE, TIMING, max_evaluations=40
        )
        assert report.tau_final <= report.tau_original + 1e-6
        assert report.data_misses_final <= report.data_misses_original
        # independent re-derivation
        before = combined_wcet(
            build_acfg(cfg, ICACHE.block_size), ICACHE, DCACHE, TIMING
        )
        after = combined_wcet(
            build_acfg(optimized, ICACHE.block_size), ICACHE, DCACHE, TIMING
        )
        assert after.tau_w <= before.tau_w + 1e-6

    @pytest.mark.parametrize("seed", range(6))
    def test_combined_time_consistency(self, seed):
        """Split-simulation totals equal the two sides' sums."""
        cfg = random_data_program(seed + 200)
        sim = simulate_split(cfg, ICACHE, DCACHE, TIMING, seed=1)
        assert sim.memory_cycles == pytest.approx(
            sim.instruction.memory_cycles + sim.data.memory_cycles
        )
        assert 0.0 <= sim.data_miss_rate <= 1.0
