"""Shared fixtures for the test suite.

The fixtures provide the handful of artefacts almost every test needs:
small deterministic programs, a couple of cache configurations spanning
the interesting regimes, and a fixed timing model.
"""

from __future__ import annotations

import pytest

from repro.analysis.timing import TimingModel
from repro.cache.config import CacheConfig
from repro.program.builder import ProgramBuilder


@pytest.fixture
def timing() -> TimingModel:
    """A fixed 1/30/1-cycle timing model (Λ = 30)."""
    return TimingModel(hit_cycles=1, miss_penalty_cycles=30, prefetch_issue_cycles=1)


@pytest.fixture
def tiny_cache() -> CacheConfig:
    """A 256 B direct-mapped cache (16 sets of 16 B) — conflict heavy."""
    return CacheConfig(associativity=1, block_size=16, capacity=256)


@pytest.fixture
def small_cache() -> CacheConfig:
    """A 2-way 512 B cache."""
    return CacheConfig(associativity=2, block_size=16, capacity=512)


@pytest.fixture
def big_cache() -> CacheConfig:
    """An 8 KiB 4-way cache — everything fits."""
    return CacheConfig(associativity=4, block_size=32, capacity=8192)


@pytest.fixture
def straight_program():
    """A straight-line program: entry, 20 instructions, exit."""
    b = ProgramBuilder("straight")
    b.code(20)
    return b.build()


@pytest.fixture
def loop_program():
    """One loop (bound 10, sim 8) with a conditional inside."""
    b = ProgramBuilder("loopy")
    b.code(4)
    with b.loop(bound=10, sim_iterations=8):
        b.code(3)
        with b.if_else(taken_prob=0.5) as arms:
            with arms.then_():
                b.code(2)
            with arms.else_():
                b.code(5)
    b.code(2)
    return b.build()


@pytest.fixture
def nested_program():
    """Two nested loops plus a function call."""
    b = ProgramBuilder("nested")
    with b.function("helper"):
        b.code(6)
    b.code(3)
    with b.loop(bound=5, sim_iterations=5):
        b.code(2)
        with b.loop(bound=4, sim_iterations=3):
            b.code(4)
        b.call("helper")
    b.code(2)
    return b.build()


@pytest.fixture
def thrash_program():
    """A loop whose body is ~2.5x a 256 B cache (conflict storm)."""
    b = ProgramBuilder("thrash")
    b.code(4)
    with b.loop(bound=12, sim_iterations=10):
        b.code(160)
    b.code(2)
    return b.build()
