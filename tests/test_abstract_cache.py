"""Tests for the must/may abstract domains, including soundness
properties against the concrete cache (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.abstract import MayState, MustState, join_all
from repro.cache.concrete import ConcreteCache
from repro.cache.config import CacheConfig
from repro.errors import AnalysisError

CFG2 = CacheConfig(2, 16, 64)  # 2 sets, 2-way
CFG4 = CacheConfig(4, 16, 64)  # 1 set, 4-way


class TestMustUpdate:
    def test_first_access_installs_at_age_zero(self):
        state = MustState(CFG2).update(0)
        assert state.age_of(0) == 0

    def test_aging_on_new_block(self):
        state = MustState(CFG2).update(0).update(2)
        assert state.age_of(2) == 0
        assert state.age_of(0) == 1

    def test_eviction_from_must_view(self):
        state = MustState(CFG2).update(0).update(2).update(4)
        assert state.age_of(0) is None
        assert 2 in state and 4 in state

    def test_rehit_promotes_without_aging_older(self):
        state = MustState(CFG2).update(0).update(2).update(0)
        assert state.age_of(0) == 0
        assert state.age_of(2) == 1  # unchanged: 0 was younger... aged once only

    def test_mru_reaccess_is_stable(self):
        state = MustState(CFG2).update(0)
        assert state.update(0) == state

    def test_sets_do_not_interfere(self):
        state = MustState(CFG2).update(0).update(1)
        assert state.age_of(0) == 0
        assert state.age_of(1) == 0


class TestMustJoin:
    def test_intersection_of_contents(self):
        a = MustState(CFG2).update(0)
        b = MustState(CFG2).update(2)
        joined = a.join(b)
        assert joined.blocks() == frozenset()

    def test_max_age_kept(self):
        a = MustState(CFG2).update(0).update(2)  # 0 at age 1
        b = MustState(CFG2).update(2).update(0)  # 0 at age 0
        joined = a.join(b)
        assert joined.age_of(0) == 1
        assert joined.age_of(2) == 1

    def test_join_requires_same_domain(self):
        with pytest.raises(AnalysisError):
            MustState(CFG2).join(MayState(CFG2))

    def test_join_all_requires_non_empty(self):
        with pytest.raises(AnalysisError):
            join_all([])

    def test_join_all_folds(self):
        states = [MustState(CFG2).update(0).update(2) for _ in range(3)]
        assert join_all(states) == states[0]


class TestMayDomain:
    def test_union_join(self):
        a = MayState(CFG2).update(0)
        b = MayState(CFG2).update(2)
        joined = a.join(b)
        assert 0 in joined and 2 in joined

    def test_min_age_kept(self):
        a = MayState(CFG2).update(0).update(2)  # 0 at age 1
        b = MayState(CFG2).update(2).update(0)  # 0 at age 0
        joined = a.join(b)
        assert joined.age_of(0) == 0

    def test_eviction_only_at_saturated_age(self):
        state = MayState(CFG2).update(0).update(2).update(4)
        assert 0 not in state  # min-age reached assoc on a sure miss

    def test_absence_proves_always_miss(self):
        state = MayState(CFG2).update(0)
        assert 2 not in state


class TestEvictedBy:
    def test_no_eviction_when_set_not_full(self):
        state = MustState(CFG2).update(0)
        assert state.evicted_by(2) == frozenset()

    def test_eviction_identified(self):
        state = MustState(CFG2).update(0).update(2)
        assert state.evicted_by(4) == frozenset({0})

    def test_rehit_evicts_nothing(self):
        state = MustState(CFG2).update(0).update(2)
        assert state.evicted_by(0) == frozenset()


def _run_concrete(blocks, config):
    cache = ConcreteCache(config)
    outcomes = []
    for block in blocks:
        outcomes.append(cache.access(block))
    return cache, outcomes


class TestSoundnessProperties:
    @given(
        blocks=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=80),
        assoc=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_must_state_subset_of_concrete(self, blocks, assoc):
        """On a single path every must-state block is really cached,
        with an age bound >= the concrete LRU position."""
        config = CacheConfig(assoc, 16, assoc * 32)
        cache = ConcreteCache(config)
        state = MustState(config)
        for block in blocks:
            cache.access(block)
            state = state.update(block)
            for cached in state.blocks():
                assert cache.contains(cached)
                assert cache.age_of(cached) <= state.age_of(cached)

    @given(
        blocks=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=80),
        assoc=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_concrete_subset_of_may_state(self, blocks, assoc):
        """Every concretely cached block appears in the may state."""
        config = CacheConfig(assoc, 16, assoc * 32)
        cache = ConcreteCache(config)
        state = MayState(config)
        for block in blocks:
            cache.access(block)
            state = state.update(block)
            for cached in cache.cached_blocks():
                assert cached in state

    @given(
        blocks=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=80)
    )
    @settings(max_examples=60, deadline=None)
    def test_single_path_must_state_is_exact(self, blocks):
        """Without joins, the must state equals the concrete cache."""
        config = CFG2
        cache = ConcreteCache(config)
        state = MustState(config)
        for block in blocks:
            cache.access(block)
            state = state.update(block)
        assert frozenset(cache.cached_blocks()) == state.blocks()
        for block in cache.cached_blocks():
            assert cache.age_of(block) == state.age_of(block)

    @given(
        prefix=st.lists(st.integers(min_value=0, max_value=7), max_size=30),
        arm_a=st.lists(st.integers(min_value=0, max_value=7), max_size=15),
        arm_b=st.lists(st.integers(min_value=0, max_value=7), max_size=15),
        suffix=st.lists(st.integers(min_value=0, max_value=7), max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_join_soundness_across_two_paths(self, prefix, arm_a, arm_b, suffix):
        """A block the joined must-state guarantees must hit on BOTH
        concrete paths; a block absent from the joined may-state must be
        absent on both."""
        config = CFG2

        def replay(path):
            cache = ConcreteCache(config)
            for block in path:
                cache.access(block)
            return cache

        def abstract(domain, path):
            state = domain(config)
            for block in path:
                state = state.update(block)
            return state

        must = abstract(MustState, prefix + arm_a).join(
            abstract(MustState, prefix + arm_b)
        )
        may = abstract(MayState, prefix + arm_a).join(
            abstract(MayState, prefix + arm_b)
        )
        for path in (prefix + arm_a, prefix + arm_b):
            cache = replay(path)
            state_must = must
            state_may = may
            concrete = cache.clone()
            for block in suffix:
                for guaranteed in state_must.blocks():
                    assert concrete.contains(guaranteed)
                for cached in concrete.cached_blocks():
                    assert cached in state_may
                concrete.access(block)
                state_must = state_must.update(block)
                state_may = state_may.update(block)


class TestStateQueryFastPaths:
    """Regression tests for the interned empty lines and the lazy
    block -> age index behind ``lines()``/``age_of()``."""

    def test_empty_lines_interned_per_associativity(self):
        from repro.cache.abstract import empty_lines

        assert empty_lines(2) is empty_lines(2)
        assert empty_lines(2) is not empty_lines(4)
        assert empty_lines(4) == tuple(frozenset() for _ in range(4))

    def test_untouched_set_returns_shared_empty_tuple(self):
        from repro.cache.abstract import empty_lines

        state = MustState(CFG2).update(0)
        other = MayState(CFG2)
        # Different states, different configs of the same associativity:
        # one shared tuple, never a fresh allocation per miss.
        assert state.lines(1) is empty_lines(2)
        assert other.lines(0) is state.lines(1)
        assert MustState(CFG4).lines(0) is empty_lines(4)

    def test_lines_on_empty_state_has_right_width(self):
        assert len(MustState(CFG4).lines(0)) == 4
        assert not any(MustState(CFG4).lines(0))

    def test_age_index_matches_linear_scan(self):
        state = MustState(CFG2)
        for block in (0, 2, 4, 1, 3, 0):
            state = state.update(block)
        for block in range(8):
            expected = None
            for set_index in state.touched_sets():
                for age, entry in enumerate(state.lines(set_index)):
                    if block in entry:
                        expected = age
            assert state.age_of(block) == expected

    def test_age_index_is_not_stale_across_updates(self):
        state = MustState(CFG2).update(0)
        assert state.age_of(0) == 0  # builds the index of `state`
        aged = state.update(2)
        # The derived state answers from its own (fresh) index.
        assert aged.age_of(0) == 1
        assert aged.age_of(2) == 0
        assert state.age_of(0) == 0  # original untouched

    def test_age_of_absent_block_on_empty_state(self):
        assert MustState(CFG2).age_of(42) is None
        assert 42 not in MayState(CFG4)
