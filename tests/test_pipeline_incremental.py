"""Incremental == cold: equivalence tests for the analysis pipeline.

The pipeline's delta re-analysis (warm-started fixpoint + IPET) must be
*bit-identical* to a from-scratch run — same τ_w, same classifications,
same per-reference times, same WCET-path counts.  The fast tests here
prove it deterministically on a Mälardalen subset; the slow hypothesis
test sweeps randomly generated programs.  Both lean on the pipeline's
``differential`` mode, which re-runs every delta analysis cold and
raises :class:`~repro.errors.AnalysisError` on any divergence.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pipeline import AnalysisPipeline, content_key
from repro.analysis.wcet import analyze_wcet
from repro.bench.generator import random_program
from repro.bench.registry import load
from repro.cache.config import CacheConfig
from repro.core.optimizer import OptimizerOptions, optimize
from repro.energy.cacti import cacti_model
from repro.energy.technology import technology
from repro.program.acfg import build_acfg

CONFIG = CacheConfig(1, 16, 256)  # the paper's k1
TIMING = cacti_model(CONFIG, technology("45nm")).timing_model()

#: Small, fast Mälardalen members — enough structural variety (straight
#: line, nested loops, calls, branches) without slowing tier-1 down.
FAST_PROGRAMS = ["bs", "fac", "fibcall", "insertsort", "jfdctint", "crc"]


def _wcet_fingerprint(wcet):
    """Every analysis output the acceptance criterion compares on."""
    acfg = wcet.acfg
    return (
        wcet.tau_w,
        wcet.wcet_path_misses,
        tuple(wcet.t_w),
        tuple(wcet.solution.n_w),
        tuple(
            wcet.cache.classification(v.rid).value
            for v in acfg.ref_vertices()
        ),
        tuple(sorted(wcet.latency_guarded)),
        tuple(sorted(wcet.persistent_charged_blocks)),
    )


class TestColdEqualsStandalone:
    """A cold pipeline run must equal the plain analyze_wcet path."""

    @pytest.mark.parametrize("program", FAST_PROGRAMS)
    def test_cold_matches_analyze_wcet(self, program):
        cfg = load(program)
        pipeline = AnalysisPipeline(CONFIG, TIMING)
        via_pipeline = pipeline.analyze(cfg).wcet
        standalone = analyze_wcet(
            build_acfg(cfg, CONFIG.block_size), CONFIG, TIMING
        )
        assert _wcet_fingerprint(via_pipeline) == _wcet_fingerprint(standalone)

    def test_repeated_analyze_hits_result_cache(self):
        cfg = load("bs")
        pipeline = AnalysisPipeline(CONFIG, TIMING)
        first = pipeline.analyze(cfg)
        again = pipeline.analyze(cfg)
        assert again is first
        assert pipeline.stats.result_hits == 1
        assert pipeline.stats.cold_runs == 1


class TestIncrementalEqualsCold:
    """Delta re-analysis across optimizer passes is bit-identical."""

    @pytest.mark.parametrize("program", ["crc", "matmult", "jfdctint"])
    def test_optimize_differential(self, program):
        cfg = load(program)
        opts = OptimizerOptions(max_evaluations=12)
        pipeline = AnalysisPipeline.for_options(
            CONFIG, TIMING, opts, differential=True
        )
        _, report = optimize(
            cfg, CONFIG, TIMING, options=opts, pipeline=pipeline
        )
        # Differential mode re-runs every delta cold and raises on any
        # mismatch, so reaching this line with checks performed is the
        # equivalence proof.
        assert report.candidates_evaluated > 0
        assert pipeline.stats.delta_runs == report.candidates_evaluated
        assert pipeline.stats.differential_checks == pipeline.stats.delta_runs
        assert pipeline.stats.delta_fallbacks == 0

    def test_shared_pipeline_matches_fresh(self):
        cfg = load("matmult")
        opts = OptimizerOptions(max_evaluations=12)
        shared = AnalysisPipeline.for_options(CONFIG, TIMING, opts)
        _, warm1 = optimize(cfg, CONFIG, TIMING, options=opts, pipeline=shared)
        _, warm2 = optimize(cfg, CONFIG, TIMING, options=opts, pipeline=shared)
        _, fresh = optimize(cfg, CONFIG, TIMING, options=opts)
        for report in (warm1, warm2):
            assert report.tau_final == fresh.tau_final
            assert report.misses_final == fresh.misses_final
            assert report.prefetch_count == fresh.prefetch_count
            assert report.passes == fresh.passes
        # The second run re-analyses the same original program: its base
        # analysis comes straight from the shared result cache.
        assert shared.stats.result_hits >= 1

    def test_mismatched_pipeline_rejected(self):
        from repro.errors import OptimizationError

        cfg = load("bs")
        other_config = CacheConfig(2, 16, 512)
        other_timing = cacti_model(
            other_config, technology("45nm")
        ).timing_model()
        pipeline = AnalysisPipeline(other_config, other_timing)
        with pytest.raises(OptimizationError):
            optimize(cfg, CONFIG, TIMING, pipeline=pipeline)


class TestContentKeys:
    def test_key_is_stable_across_rebuilds(self):
        a = content_key(load("fac"), CONFIG.block_size, 0)
        b = content_key(load("fac"), CONFIG.block_size, 0)
        assert a == b

    def test_key_separates_programs_and_parameters(self):
        fac = content_key(load("fac"), CONFIG.block_size, 0)
        assert fac != content_key(load("bs"), CONFIG.block_size, 0)
        assert fac != content_key(load("fac"), 32, 0)
        assert fac != content_key(load("fac"), CONFIG.block_size, 64)


@pytest.mark.slow
class TestIncrementalEqualsColdGenerated:
    """Property check over generated programs (slow suite)."""

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_optimize_differential_random(self, seed):
        cfg = random_program(seed, target_size=120, max_depth=3)
        opts = OptimizerOptions(max_evaluations=10)
        pipeline = AnalysisPipeline.for_options(
            CONFIG, TIMING, opts, differential=True
        )
        optimize(cfg, CONFIG, TIMING, options=opts, pipeline=pipeline)
        assert pipeline.stats.differential_checks == pipeline.stats.delta_runs
        assert pipeline.stats.delta_fallbacks == 0

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_cold_matches_analyze_wcet_random(self, seed):
        cfg = random_program(seed, target_size=120, max_depth=3)
        pipeline = AnalysisPipeline(CONFIG, TIMING)
        via_pipeline = pipeline.analyze(cfg).wcet
        standalone = analyze_wcet(
            build_acfg(cfg, CONFIG.block_size), CONFIG, TIMING
        )
        assert _wcet_fingerprint(via_pipeline) == _wcet_fingerprint(standalone)
