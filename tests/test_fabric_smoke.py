"""Fabric smoke test: a real fleet losing a worker mid-sweep.

The distributed contract in one scenario: a coordinator with two
workers sharing one disk cache runs a multi-shard grid while one
worker is killed partway through; the merged document must come back
complete, with zero failures, and bit-identical to a single-node
``run_sweep`` over the same grid with the same kernel.

Every case carries an injected ``hang`` pad so shards stay in flight
long enough for the kill to land mid-sweep on a 1-CPU machine (the pad
sleeps, then computes normally — results are unchanged).

Slow tier (CI ``fabric-smoke`` job): real compute on both workers plus
the recovery round-trips.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.report import sweep_to_json
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.service.app import BackgroundServer
from repro.service.client import ServiceClient

GRID = dict(programs=["bs", "prime"], configs=["k1", "k2"],
            techs=["45nm"], budget=10)

SPEC = SweepSpec(
    programs=("bs", "prime"),
    config_ids=("k1", "k2"),
    techs=("45nm",),
    max_evaluations=10,
    kernel="vectorized",  # the fabric's default kernel
)

#: Identical latency pad on every attempt of every case: the sweep
#: takes long enough to kill a worker mid-flight, results unchanged.
HANG_ALL = json.dumps(
    {"*": {"kind": "hang", "attempts": [1, 2, 3], "seconds": 0.3}}
)


@pytest.mark.slow
class TestFabricSmoke:
    def test_fleet_survives_a_worker_death_mid_sweep(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE_MAX_BYTES", raising=False)
        monkeypatch.setenv("REPRO_FAULT_PLAN", HANG_ALL)
        cache = tmp_path / "fleet-cache"

        worker_a = BackgroundServer(cache_dir=cache, workers=1).start()
        worker_b = BackgroundServer(cache_dir=cache, workers=1).start()
        coord = BackgroundServer(
            coordinator=True,
            worker_urls=[worker_a.url, worker_b.url],
            shard_size=1,  # 4 shards: both workers hold leases
            cache_dir="off",  # merge only through the workers
        ).start()
        try:
            client = ServiceClient(coord.host, coord.port)
            record = client.submit_fabric_sweep(**GRID)
            assert record["cases"] == 4

            killed = False
            kinds = []
            for event, data in client.stream_sweep(record["id"]):
                kinds.append(event)
                if event == "case" and not killed:
                    # First result is in: worker B dies mid-sweep.
                    worker_b.stop()
                    killed = True
            assert killed, f"no case event before the stream ended: {kinds}"
            assert kinds[-1] == "done"

            document = client.fabric_result(record["id"])
        finally:
            coord.stop()
            worker_a.stop()
            if not killed:
                worker_b.stop()

        assert document["summary"]["cases"] == 4
        assert document["summary"]["failed"] == 0
        assert document["fabric"]["shards"] == 4

        # Bit-identity: the fleet's merged cases are exactly what one
        # node computes serially with the same kernel (the pad in
        # REPRO_FAULT_PLAN only sleeps, so it cancels out here).
        serial = run_sweep(SPEC, use_cache=False, workers=1)
        assert document["cases"] == sweep_to_json(serial)["cases"]
