"""Smoke tests for the public API surface and the error hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_specific_parents(self):
        assert issubclass(errors.LayoutError, errors.ProgramModelError)
        assert issubclass(errors.LoopBoundError, errors.ProgramModelError)
        assert issubclass(errors.InfeasibleILPError, errors.AnalysisError)
        assert issubclass(errors.GuaranteeViolation, errors.OptimizationError)


class TestPackageExports:
    def test_version(self):
        assert repro.__version__

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.bench
        import repro.cache
        import repro.core
        import repro.data
        import repro.energy
        import repro.experiments
        import repro.program
        import repro.sim

        for module in (
            repro.analysis,
            repro.bench,
            repro.cache,
            repro.core,
            repro.data,
            repro.energy,
            repro.experiments,
            repro.program,
            repro.sim,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_quickstart_surface(self, tiny_cache, timing):
        """The five-line quickstart from the README must keep working."""
        from repro.bench import load
        from repro.core import optimize
        from repro.energy import TECH_45NM, cacti_model
        from repro.sim import simulate

        cfg = load("bs")
        model = cacti_model(tiny_cache, TECH_45NM)
        optimized, report = optimize(cfg, tiny_cache, model.timing_model())
        result = simulate(optimized, tiny_cache, model.timing_model())
        assert report.tau_final <= report.tau_original
        assert result.fetches > 0
