"""Tests for the hybrid locking+prefetching scheme and locked-aware
analysis/simulation."""

from __future__ import annotations

import pytest

from repro.analysis.wcet import analyze_wcet
from repro.cache.classify import Classification, analyze_cache
from repro.cache.config import CacheConfig
from repro.core.optimizer import OptimizerOptions
from repro.errors import SimulationError
from repro.program.acfg import build_acfg
from repro.program.builder import ProgramBuilder
from repro.sim.locking import optimize_with_locking, residual_config
from repro.sim.machine import MemorySystem, simulate


def _program():
    b = ProgramBuilder("hybrid")
    b.code(4)
    with b.loop(bound=10, sim_iterations=8):
        b.code(60)
    b.code(2)
    return b.build()


class TestResidualConfig:
    def test_reduces_ways_keeps_sets(self):
        full = CacheConfig(4, 16, 1024)  # 16 sets
        residual = residual_config(full, 1)
        assert residual.associativity == 3
        assert residual.num_sets == full.num_sets
        assert residual.capacity == 768

    def test_bounds_checked(self):
        full = CacheConfig(2, 16, 512)
        with pytest.raises(SimulationError):
            residual_config(full, 0)
        with pytest.raises(SimulationError):
            residual_config(full, 2)


class TestLockedAwareAnalysis:
    def test_locked_blocks_classify_always_hit(self, timing):
        cfg = _program()
        config = CacheConfig(1, 16, 256)
        acfg = build_acfg(cfg, config.block_size)
        locked = frozenset({0, 1})
        analysis = analyze_cache(acfg, config, locked_blocks=locked)
        for vertex in acfg.ref_vertices():
            if acfg.block_of(vertex.rid) in locked:
                assert (
                    analysis.classification(vertex.rid)
                    is Classification.ALWAYS_HIT
                )

    def test_locked_blocks_do_not_disturb_lru_state(self, timing):
        """Locking a conflicting block removes its interference."""
        config = CacheConfig(1, 16, 32)  # 2 sets, direct-mapped
        b = ProgramBuilder("p")
        with b.loop(bound=8):
            b.code(9)  # ~3 blocks through 2 sets: set-0 conflict
        cfg = b.build()
        acfg = build_acfg(cfg, config.block_size)
        plain = analyze_wcet(acfg, config, timing)
        # lock block 2 (conflicts with block 0 in set 0)
        locked = analyze_wcet(acfg, config, timing, locked_blocks=frozenset({2}))
        assert locked.tau_w < plain.tau_w

    def test_locked_wcet_monotone_in_locked_set(self, timing):
        cfg = _program()
        config = CacheConfig(1, 16, 256)
        acfg = build_acfg(cfg, config.block_size)
        taus = []
        for locked in (frozenset(), frozenset({4}), frozenset({4, 5, 6})):
            taus.append(
                analyze_wcet(acfg, config, timing, locked_blocks=locked).tau_w
            )
        assert taus[0] >= taus[1] >= taus[2]


class TestLockedMachine:
    def test_locked_fetch_always_hits(self, timing):
        system = MemorySystem(
            CacheConfig(2, 16, 64), timing, locked_blocks=frozenset({5})
        )
        assert system.fetch(5 * 16) == timing.hit_cycles
        assert system.result.demand_misses == 0

    def test_locked_block_prefetch_dropped(self, timing):
        system = MemorySystem(
            CacheConfig(2, 16, 64), timing, locked_blocks=frozenset({5})
        )
        assert system.issue_prefetch(5) is False
        assert system.result.prefetch_transfers == 0

    def test_locked_fetch_does_not_touch_lru(self, timing):
        config = CacheConfig(1, 16, 32)  # 2 sets, 1-way
        system = MemorySystem(config, timing, locked_blocks=frozenset({2}))
        system.fetch(0)        # block 0 -> set 0
        system.fetch(2 * 16)   # locked: must NOT evict block 0
        assert system.fetch(0) == timing.hit_cycles


class TestHybridScheme:
    def test_hybrid_improves_over_baseline(self, timing):
        cfg = _program()
        config = CacheConfig(2, 16, 256)
        acfg = build_acfg(cfg, config.block_size)
        base = analyze_wcet(acfg, config, timing).tau_w
        locked, optimized, report, residual = optimize_with_locking(
            cfg, config, timing, locked_ways=1,
            options=OptimizerOptions(max_evaluations=60),
        )
        assert locked
        assert report.tau_final <= report.tau_original

    def test_locked_blocks_capped_per_set(self, timing):
        cfg = _program()
        config = CacheConfig(2, 16, 256)
        locked, _, _, _ = optimize_with_locking(
            cfg, config, timing, locked_ways=1,
            options=OptimizerOptions(max_evaluations=10),
        )
        per_set: dict = {}
        for block in locked:
            per_set.setdefault(config.set_index(block), []).append(block)
        assert all(len(blocks) <= 1 for blocks in per_set.values())

    def test_hybrid_simulation_consistent(self, timing):
        cfg = _program()
        config = CacheConfig(2, 16, 256)
        locked, optimized, report, residual = optimize_with_locking(
            cfg, config, timing, locked_ways=1,
            options=OptimizerOptions(max_evaluations=60),
        )
        result = simulate(
            optimized, residual, timing, seed=1, locked_blocks=locked
        )
        result.validate()
        assert result.hits > 0
