"""Detailed tests of the use-case measurement plumbing."""

from __future__ import annotations

import pytest

from repro.bench.registry import load
from repro.cache.config import TABLE2
from repro.core.optimizer import OptimizerOptions
from repro.experiments.usecase import (
    ProgramMeasurement,
    UseCase,
    _ratio,
    measure_program,
    run_cross_capacity,
    run_usecase,
)


class TestMeasureProgram:
    def test_persistence_flag_changes_the_bound(self):
        cfg = load("bsort100")
        config = TABLE2["k1"]
        tight = measure_program(cfg, config, "45nm", with_persistence=True)
        loose = measure_program(cfg, config, "45nm", with_persistence=False)
        assert tight.tau_w <= loose.tau_w
        # the simulation is baseline-independent
        assert tight.tau_a == loose.tau_a
        assert tight.miss_rate_acet == loose.miss_rate_acet

    def test_measurement_fields_consistent(self):
        cfg = load("crc")
        m = measure_program(cfg, TABLE2["k7"], "32nm")
        assert m.executed_instructions > 0
        assert m.static_instructions == cfg.instruction_count
        assert 0.0 <= m.miss_rate_acet <= 1.0
        assert 0.0 <= m.miss_rate_wcet <= 1.0
        assert m.energy.total_j > 0
        assert m.prefetch_transfer_energy_j == 0.0  # no prefetches yet
        assert m.energy_paper_mode_j == pytest.approx(m.energy.total_j)


class TestPaperModeEnergy:
    def test_paper_mode_never_above_physical(self):
        result = run_usecase(
            UseCase("fdct", "k1", "45nm"),
            options=OptimizerOptions(
                with_persistence=False, max_evaluations=60
            ),
        )
        # paper mode removes the prefetch transfer charge from the
        # optimized program only, so its ratio is <= the physical one
        assert result.energy_ratio_paper_mode <= result.energy_ratio + 1e-9

    def test_paper_mode_equals_physical_without_prefetches(self):
        result = run_usecase(
            UseCase("bs", "k31", "45nm"),
            options=OptimizerOptions(max_evaluations=5),
        )
        if result.report.prefetch_count == 0:
            assert result.energy_ratio_paper_mode == pytest.approx(
                result.energy_ratio
            )


class TestRatioEdgeCases:
    def test_plain_division(self):
        assert _ratio(1.0, 2.0) == 0.5
        assert _ratio(3.0, 3.0) == 1.0

    def test_zero_over_zero_is_a_true_noop(self):
        # neither build consumed the quantity: "unchanged" is honest
        assert _ratio(0.0, 0.0) == 1.0

    def test_positive_over_zero_is_an_unbounded_regression(self):
        # the optimized build consumes something the original did not;
        # this must not masquerade as "unchanged"
        assert _ratio(2.0, 0.0) == float("inf")
        assert _ratio(1e-12, 0.0) == float("inf")


class TestCrossCapacityBaseAddress:
    def test_original_measurement_uses_the_options_base_address(self):
        """Regression: the big-cache original measurement used to ignore
        ``options.base_address`` (always 0) while the optimized
        small-cache measurement ran at the pipeline's base address, so
        the two executables were laid out differently."""
        usecase = UseCase("bs", "k1", "45nm")
        options = OptimizerOptions(max_evaluations=5, base_address=64)
        result = run_cross_capacity(usecase, 0.5, seed=1, options=options)
        # the original side must equal a standalone measurement of the
        # same program at the same (nonzero) base address...
        big = usecase.cache_config()
        expected = measure_program(
            load("bs"), big, "45nm", seed=1, base_address=64,
        )
        assert result.original.tau_w == expected.tau_w
        assert result.original.tau_a == expected.tau_a
        assert result.original.miss_rate_acet == expected.miss_rate_acet
        # ...and differ from the base-address-0 layout whenever the
        # layout matters to this cache (guards against the fix rotting)
        at_zero = measure_program(
            load("bs"), big, "45nm", seed=1, base_address=0,
        )
        if (at_zero.tau_w, at_zero.tau_a) != (expected.tau_w, expected.tau_a):
            assert (result.original.tau_w, result.original.tau_a) != (
                at_zero.tau_w, at_zero.tau_a
            )

    def test_default_options_keep_base_address_zero(self):
        usecase = UseCase("bs", "k1", "45nm")
        options = OptimizerOptions(max_evaluations=5)
        result = run_cross_capacity(usecase, 0.5, seed=1, options=options)
        expected = measure_program(
            load("bs"), usecase.cache_config(), "45nm", seed=1,
            base_address=0,
        )
        assert result.original.tau_w == expected.tau_w
        assert result.original.tau_a == expected.tau_a


class TestBaselineThreading:
    def test_usecase_respects_baseline_options(self):
        classic = run_usecase(
            UseCase("insertsort", "k1", "45nm"),
            options=OptimizerOptions(
                with_persistence=False, max_evaluations=40
            ),
        )
        persistence = run_usecase(
            UseCase("insertsort", "k1", "45nm"),
            options=OptimizerOptions(
                with_persistence=True, max_evaluations=40
            ),
        )
        # baselines differ: the classic original bound is looser
        assert classic.original.tau_w >= persistence.original.tau_w
        # each mode individually upholds Theorem 1 w.r.t. its own baseline
        assert classic.wcet_ratio <= 1.0 + 1e-9
        assert persistence.wcet_ratio <= 1.0 + 1e-9
