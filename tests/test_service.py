"""Tests for the analysis service (``repro serve``).

Four layers:

* protocol — payload validation, canonicalisation, fingerprints;
* telemetry — counter/histogram semantics and the exposition format;
* queue semantics over a real socket with a hand-controlled stub
  executor — coalescing, 429 backpressure, cancellation, timeout
  (deterministic: the test resolves the futures);
* end-to-end with the real pool — submit → poll → fetch, the disk-cache
  fast path, and ``/metrics`` counter consistency.
"""

from __future__ import annotations

import concurrent.futures
import json
from concurrent.futures.process import BrokenProcessPool
import time
import urllib.error
import urllib.request
from typing import List, Tuple

import pytest

from repro.cli import main
from repro.errors import ProtocolError, ServiceError
from repro.service.app import BackgroundServer
from repro.service.client import ServiceClient, backoff_delay
from repro.service.executor import AnalysisExecutor
from repro.service.protocol import parse_job
from repro.service.telemetry import (
    MetricsRegistry,
    ServiceTelemetry,
)


@pytest.fixture(autouse=True)
def _no_ambient_config(monkeypatch):
    """Keep the environment from injecting caches, workers or caps."""
    monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_SWEEP_CACHE_MAX_BYTES", raising=False)


class ManualExecutor:
    """A backend whose futures the test resolves by hand."""

    workers = 1

    def __init__(self):
        self.submitted: List[Tuple[object, concurrent.futures.Future]] = []

    def probe_cache(self, request):
        return None

    def submit(self, request):
        future: concurrent.futures.Future = concurrent.futures.Future()
        self.submitted.append((request, future))
        return future

    def shutdown(self):
        pass

    def describe(self):
        return {"workers": self.workers, "pool": "manual",
                "cache_dir": None, "max_cache_bytes": None}


def _metric(text: str, name: str) -> float:
    for line in text.splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[1])
    raise AssertionError(f"metric {name!r} not found in:\n{text}")


def _wait_for_state(client, job_id, state, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = client.status(job_id)
        if record["state"] == state:
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {state!r}")


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_defaults_are_normalised_into_the_fingerprint(self):
        sparse = parse_job({"kind": "optimize",
                            "params": {"program": "bs", "config": "k1"}})
        spelled = parse_job({"kind": "optimize",
                             "params": {"program": "bs", "config": "k1",
                                        "tech": "45nm", "seed": 1,
                                        "budget": 120,
                                        "baseline": "persistence"}})
        assert sparse.params == spelled.params
        assert sparse.fingerprint() == spelled.fingerprint()

    def test_fingerprint_separates_kinds_and_params(self):
        base = parse_job({"kind": "optimize",
                          "params": {"program": "bs", "config": "k1"}})
        other_kind = parse_job({"kind": "usecase",
                                "params": {"program": "bs", "config": "k1"}})
        other_seed = parse_job({"kind": "optimize",
                                "params": {"program": "bs", "config": "k1",
                                           "seed": 2}})
        assert base.fingerprint() != other_kind.fingerprint()
        assert base.fingerprint() != other_seed.fingerprint()

    def test_table1_ids_resolve_to_program_names(self):
        req = parse_job({"kind": "optimize",
                         "params": {"program": "p2", "config": "k1"}})
        assert req.param("program") == "bs"

    def test_sweep_defaults_fill_the_documented_grid(self):
        from repro.experiments.sweep import default_grid

        req = parse_job({"kind": "sweep", "params": {}})
        grid = default_grid()
        assert req.param("programs") == grid.programs
        assert req.param("configs") == grid.config_ids
        assert req.param("techs") == grid.techs
        assert req.param("baseline") == "classic"

    @pytest.mark.parametrize("payload,needle", [
        ("not a dict", "JSON object"),
        ({"kind": "frobnicate", "params": {}}, "kind"),
        ({"kind": "optimize", "params": {"program": "nope",
                                         "config": "k1"}}, "params.program"),
        ({"kind": "optimize", "params": {"program": "bs",
                                         "config": "zz"}}, "params.config"),
        ({"kind": "optimize", "params": {"program": "bs", "config": "k1",
                                         "tech": "90nm"}}, "params.tech"),
        ({"kind": "optimize", "params": {"program": "bs", "config": "k1",
                                         "budget": -1}}, "params.budget"),
        ({"kind": "optimize", "params": {"program": "bs", "config": "k1",
                                         "typo": 1}}, "unknown field"),
        ({"kind": "sweep", "params": {"programs": []}}, "params.programs"),
    ])
    def test_violations_name_the_offending_field(self, payload, needle):
        with pytest.raises(ProtocolError, match=needle):
            parse_job(payload)


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_counter_and_gauge_rendering(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs", "requests seen")
        gauge = registry.gauge("depth")
        counter.inc()
        counter.inc(2)
        gauge.set(5)
        gauge.dec()
        text = registry.render()
        assert "# TYPE reqs counter" in text
        assert "# HELP reqs requests seen" in text
        assert _metric(text, "reqs") == 3
        assert _metric(text, "depth") == 4
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        text = registry.render()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="10"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert _metric(text, "lat_count") == 4
        assert hist.mean() == pytest.approx(55.55 / 4)

    def test_registry_is_idempotent_but_type_strict(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_retry_after_hint_tracks_latency(self):
        telemetry = ServiceTelemetry()
        assert telemetry.retry_after_hint() == 1  # no data -> 1s default
        telemetry.job_latency_seconds.observe(7.0)
        assert telemetry.retry_after_hint() == 7


# ----------------------------------------------------------------------
# client-side backoff
# ----------------------------------------------------------------------
class TestClientBackoff:
    def test_backoff_envelope_is_exponential_and_capped(self):
        # rng=1.0 pins the jitter to its upper envelope: the old
        # deterministic schedule.
        one = lambda: 1.0
        delays = [backoff_delay(i, base=0.1, cap=2.0, rng=one)
                  for i in range(8)]
        assert delays[:5] == [0.1, 0.2, 0.4, 0.8, 1.6]
        assert delays[5:] == [2.0, 2.0, 2.0]

    def test_backoff_is_jittered_within_the_envelope(self):
        # Default rng: every delay lands in [0, envelope); a fleet
        # retrying in unison must not produce identical schedules.
        for attempt in range(8):
            envelope = backoff_delay(attempt, base=0.1, cap=2.0,
                                     rng=lambda: 1.0)
            samples = [backoff_delay(attempt, base=0.1, cap=2.0)
                       for _ in range(50)]
            assert all(0.0 <= s <= envelope for s in samples)
            assert len(set(samples)) > 1  # actually random

    def test_retry_after_equal_jitter_stays_within_the_hint(self):
        from repro.service.client import retry_after_delay

        assert retry_after_delay(3.0, rng=lambda: 1.0) == 3.0
        assert retry_after_delay(3.0, rng=lambda: 0.0) == 1.5
        samples = [retry_after_delay(3.0) for _ in range(50)]
        assert all(1.5 <= s <= 3.0 for s in samples)

    def test_retries_on_429_then_succeeds(self, monkeypatch):
        slept = []
        client = ServiceClient("127.0.0.1", 1, max_retries=5,
                               sleep=slept.append, rng=lambda: 1.0)
        responses = iter([
            (429, {"retry-after": "3"}, {"error": "full"}),
            (429, {}, {"error": "full"}),
            (202, {}, {"job": {"id": "j1"}}),
        ])
        monkeypatch.setattr(client, "_once",
                            lambda method, path, body=None: next(responses))
        job = client.submit("optimize", program="bs", config="k1")
        assert job["id"] == "j1"
        # first delay honoured the server's Retry-After (equal jitter,
        # rng=1.0 -> exactly the hint), second fell back to the
        # exponential schedule
        assert slept == [3.0, backoff_delay(1, 0.1, 2.0, rng=lambda: 1.0)]

    def test_exhausted_retries_surface_the_status(self, monkeypatch):
        client = ServiceClient("127.0.0.1", 1, max_retries=1,
                               sleep=lambda s: None)
        monkeypatch.setattr(
            client, "_once",
            lambda method, path, body=None: (429, {"retry-after": "2"},
                                             {"error": "full"}))
        with pytest.raises(ServiceError) as info:
            client.submit("optimize", program="bs", config="k1")
        assert info.value.status == 429
        assert info.value.retry_after == 2.0


# ----------------------------------------------------------------------
# queue semantics over a real socket (hand-controlled backend)
# ----------------------------------------------------------------------
class TestQueueSemantics:
    def test_identical_submissions_coalesce_to_one_computation(self):
        stub = ManualExecutor()
        with BackgroundServer(executor=stub) as server:
            client = ServiceClient(server.host, server.port)
            first = client.submit("optimize", program="bs", config="k1",
                                  budget=7)
            second = client.submit("optimize", program="bs", config="k1",
                                   budget=7)
            assert not first["coalesced"]
            assert second["coalesced"]
            # one underlying computation for two jobs
            deadline = time.monotonic() + 5
            while not stub.submitted and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(stub.submitted) == 1
            stub.submitted[0][1].set_result({"answer": 42})
            for record in (first, second):
                result = client.result(record["id"], timeout=10)
                assert result == {"answer": 42}
            metrics = client.metrics()
            assert _metric(metrics, "jobs_submitted") == 2
            assert _metric(metrics, "jobs_coalesced") == 1
            assert _metric(metrics, "jobs_completed") == 2
            assert _metric(metrics, "computations") == 1
            # still exactly one dispatch after both results were fetched
            assert len(stub.submitted) == 1

    def test_full_queue_returns_429_with_retry_after(self):
        stub = ManualExecutor()
        with BackgroundServer(executor=stub, max_queue=1,
                              dispatchers=1) as server:
            client = ServiceClient(server.host, server.port)
            # occupy the single dispatcher...
            running = client.submit("optimize", program="bs", config="k1",
                                    budget=11)
            _wait_for_state(client, running["id"], "running")
            # ...fill the single queue slot...
            client.submit("optimize", program="bs", config="k1", budget=12)
            # ...and watch the third distinct submission bounce.
            with pytest.raises(ServiceError) as info:
                client.submit("optimize", program="bs", config="k1",
                              budget=13, max_retries=0)
            assert info.value.status == 429
            assert info.value.retry_after is not None
            assert info.value.retry_after >= 1
            assert _metric(client.metrics(), "jobs_rejected") == 1

    def test_cancellation_mid_job(self):
        stub = ManualExecutor()
        with BackgroundServer(executor=stub) as server:
            client = ServiceClient(server.host, server.port)
            job = client.submit("optimize", program="bs", config="k1",
                                budget=9)
            _wait_for_state(client, job["id"], "running")
            cancelled = client.cancel(job["id"])
            assert cancelled["state"] == "cancelled"
            # the result endpoint reports Gone
            with pytest.raises(ServiceError) as info:
                client.result(job["id"], timeout=5)
            assert info.value.status == 410
            # the last detaching job cancelled the pool future itself
            assert stub.submitted
            future = stub.submitted[0][1]
            assert future.cancelled()
            time.sleep(0.1)
            assert client.status(job["id"])["state"] == "cancelled"
            # cancelling a terminal job is a conflict
            with pytest.raises(ServiceError) as info:
                client.cancel(job["id"])
            assert info.value.status == 409
            assert _metric(client.metrics(), "jobs_cancelled") == 1

    def test_job_timeout_fails_the_job(self):
        stub = ManualExecutor()
        with BackgroundServer(executor=stub,
                              job_timeout_s=0.2) as server:
            client = ServiceClient(server.host, server.port)
            job = client.submit("optimize", program="bs", config="k1",
                                budget=8)
            record = _wait_for_state(client, job["id"], "failed")
            assert "timed out" in record["error"]
            # the structured failure record travels with the job
            assert record["failure"]["error_type"] == "TimeoutError"
            assert record["failure"]["transient"] is True
            assert record["failure"]["attempts"] == 1
            with pytest.raises(ServiceError) as info:
                client.result(job["id"], timeout=5)
            assert info.value.status == 500
            assert _metric(client.metrics(), "jobs_failed") == 1

    def test_transient_executor_failure_is_retried(self):
        """A broken pool fails the first attempt; the manager resubmits
        after backoff and the second attempt's result completes the job."""
        stub = ManualExecutor()
        with BackgroundServer(executor=stub) as server:
            client = ServiceClient(server.host, server.port)
            job = client.submit("optimize", program="bs", config="k1",
                                budget=21)
            deadline = time.monotonic() + 5
            while not stub.submitted and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(stub.submitted) == 1
            stub.submitted[0][1].set_exception(
                BrokenProcessPool("worker died")
            )
            # the retry resubmits to the same (recover-less) executor
            while len(stub.submitted) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(stub.submitted) == 2
            stub.submitted[1][1].set_result({"answer": 7})
            assert client.result(job["id"], timeout=10) == {"answer": 7}
            metrics = client.metrics()
            assert _metric(metrics, "job_retries") == 1
            # ManualExecutor has no recover(): nothing was rebuilt
            assert _metric(metrics, "pool_rebuilds") == 0
            assert _metric(metrics, "jobs_completed") == 1
            assert _metric(metrics, "jobs_failed") == 0

    def test_permanent_executor_failure_is_not_retried(self):
        stub = ManualExecutor()
        with BackgroundServer(executor=stub) as server:
            client = ServiceClient(server.host, server.port)
            job = client.submit("optimize", program="bs", config="k1",
                                budget=22)
            deadline = time.monotonic() + 5
            while not stub.submitted and time.monotonic() < deadline:
                time.sleep(0.01)
            stub.submitted[0][1].set_exception(ValueError("bad input"))
            record = _wait_for_state(client, job["id"], "failed")
            assert record["failure"]["error_type"] == "ValueError"
            assert record["failure"]["transient"] is False
            assert record["failure"]["attempts"] == 1
            # deterministic failures burn exactly one attempt
            assert len(stub.submitted) == 1
            assert _metric(client.metrics(), "job_retries") == 0

    def test_http_error_mapping(self):
        stub = ManualExecutor()
        with BackgroundServer(executor=stub) as server:
            base = server.url

            def status_of(method, path, data=None):
                request = urllib.request.Request(
                    base + path, data=data, method=method
                )
                try:
                    with urllib.request.urlopen(request, timeout=10) as resp:
                        return resp.status
                except urllib.error.HTTPError as error:
                    return error.code

            assert status_of("POST", "/v1/jobs", b"{not json") == 400
            assert status_of("POST", "/v1/jobs",
                             json.dumps({"kind": "bad"}).encode()) == 400
            assert status_of("GET", "/v1/jobs/unknown") == 404
            assert status_of("GET", "/v1/results/unknown") == 404
            assert status_of("DELETE", "/v1/jobs/unknown") == 404
            assert status_of("GET", "/v1/jobs") == 405
            assert status_of("GET", "/nope") == 404
            assert status_of("GET", "/healthz") == 200


# ----------------------------------------------------------------------
# executor recovery
# ----------------------------------------------------------------------
class TestExecutorRecovery:
    def test_recover_rebuilds_a_fresh_process_pool(self, tmp_path):
        executor = AnalysisExecutor(workers=1, cache_dir=tmp_path / "cache")
        try:
            before = executor._ensure_pool()
            if not executor._pool_is_processes:
                pytest.skip("platform cannot run a process pool")
            rebuilt = executor.recover()
            assert rebuilt is not before
            assert executor.pool_rebuilds == 1
            facts = executor.describe()
            assert facts["pool"] == "processes"
            assert facts["pool_rebuilds"] == 1
            # the rebuilt pool still computes
            future = rebuilt.submit(int, "7")
            assert future.result(timeout=60) == 7
        finally:
            executor.shutdown()


# ----------------------------------------------------------------------
# end-to-end with the real compute pool
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_submit_poll_fetch_cache_and_metrics(self, tmp_path):
        executor = AnalysisExecutor(workers=2, cache_dir=tmp_path / "cache")
        with BackgroundServer(executor=executor) as server:
            client = ServiceClient(server.host, server.port)
            health = client.health()
            assert health["status"] == "ok"
            assert health["executor"]["workers"] == 2

            job = client.submit("optimize", program="bs", config="k1",
                                budget=5)
            assert job["state"] in ("queued", "running")
            result = client.result(job["id"], timeout=120)
            assert result["program"] == "bs"
            assert result["guarantee"]["theorem1"] is True
            assert result["wcet_ratio"] <= 1.0 + 1e-9
            assert client.status(job["id"])["state"] == "done"

            # identical resubmission: served from the persistent cache,
            # bit-exactly, without touching the pool again
            rerun = client.submit("optimize", program="bs", config="k1",
                                  budget=5)
            assert rerun["cached"]
            assert rerun["state"] == "done"
            assert client.result(rerun["id"], timeout=10) == result

            metrics = client.metrics()
            assert _metric(metrics, "jobs_submitted") == 2
            assert _metric(metrics, "jobs_completed") == 2
            assert _metric(metrics, "cache_hits") == 1
            assert _metric(metrics, "computations") == 1
            assert _metric(metrics, "job_latency_seconds_count") == 1
            assert _metric(metrics, "http_requests") >= 6

    def test_usecase_job_round_trips_the_full_document(self, tmp_path):
        executor = AnalysisExecutor(workers=1, cache_dir=tmp_path / "cache")
        with BackgroundServer(executor=executor) as server:
            client = ServiceClient(server.host, server.port)
            result = client.run("usecase", program="bs", config="k1",
                                budget=5, timeout=120)
            assert result["usecase"] == ["bs", "k1", "45nm"]
            assert set(result["ratios"]) == {
                "wcet", "acet", "energy", "energy_paper_mode", "instructions"
            }

    def test_small_sweep_job(self, tmp_path):
        executor = AnalysisExecutor(workers=1, cache_dir=tmp_path / "cache")
        with BackgroundServer(executor=executor) as server:
            client = ServiceClient(server.host, server.port)
            result = client.run("sweep", programs=["bs"], configs=["k1"],
                                techs=["45nm"], budget=5, timeout=120)
            assert result["summary"]["cases"] == 1
            assert len(result["cases"]) == 1
            assert result["cases"][0]["program"] == "bs"
            assert result["metrics"]["computed"] == 1

    @pytest.mark.slow
    def test_longer_sweep_shares_the_cli_cache(self, tmp_path):
        """A service sweep warms the same records a CLI sweep reads."""
        cache_dir = tmp_path / "cache"
        executor = AnalysisExecutor(workers=2, cache_dir=cache_dir)
        with BackgroundServer(executor=executor) as server:
            client = ServiceClient(server.host, server.port)
            result = client.run("sweep", programs=["bs", "prime"],
                                configs=["k1"], techs=["45nm"],
                                budget=10, timeout=600)
            assert result["summary"]["cases"] == 2
        # the CLI sweep over the same grid is now fully disk-served
        code = main(["sweep", "--programs", "bs", "prime",
                     "--configs", "k1", "--techs", "45nm",
                     "--budget", "10", "--workers", "1",
                     "--cache-dir", str(cache_dir), "--no-cache"])
        assert code == 0


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_self_check_boots_and_reports(self, capsys):
        assert main(["serve", "--self-check", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "self-check" in out
        assert "ok" in out
