"""Property-based tests of the paper's formal guarantees.

Touzeau et al. (arXiv:1701.08030) and Hardy & Puaut (arXiv:0807.0993)
both stress that soundness bugs in cache analysis corrupt WCET bounds
*silently* — no crash, just an optimistic number.  So the guarantees are
re-derived here as executable invariants over randomly generated
programs × sampled Table 2 configurations:

* **Theorem 1** — optimization never increases τ_w (re-derived from
  scratch by :func:`verify_wcet_guarantee`, not trusted from the
  optimizer's own gate);
* **Definition 5** — stripping prefetches recovers the original
  instruction stream exactly (:func:`verify_prefetch_equivalence`);
* **Definition 10** — every inserted prefetch's latency Λ fits in the
  minimum memory time to the first use (:func:`verify_effectiveness`
  returns no under-charged reference).

A small deterministic subset runs in tier-1; the wide hypothesis
sweeps are marked ``slow`` (run them with ``pytest -m slow``).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.timing import TimingModel
from repro.bench.generator import random_program
from repro.cache.config import TABLE2
from repro.core.guarantees import (
    verify_effectiveness,
    verify_miss_reduction,
    verify_prefetch_equivalence,
    verify_wcet_guarantee,
)
from repro.core.optimizer import OptimizerOptions, optimize

#: Table 2 sample spanning the interesting regimes: direct-mapped and
#: set-associative, small and large blocks, tight and roomy capacities.
def _sample_table2():
    wanted = [
        (1, 16, 256),
        (2, 16, 512),
        (4, 32, 1024),
        (1, 32, 2048),
        (2, 64, 4096),
    ]
    ids = []
    for assoc, block, capacity in wanted:
        for kid, cfg in TABLE2.items():
            if (cfg.associativity, cfg.block_size, cfg.capacity) == (
                assoc,
                block,
                capacity,
            ):
                ids.append(kid)
                break
    assert ids, "Table 2 sample came up empty"
    return tuple(ids)


CONFIG_SAMPLE = _sample_table2()

TIMING = TimingModel()  # 1 / 30 / 1 — the fixture model of the suite


def _check_all_guarantees(seed: int, config_id: str, with_persistence: bool):
    """Optimize one generated program and re-derive every guarantee."""
    config = TABLE2[config_id]
    original = random_program(seed, target_size=70)
    options = OptimizerOptions(
        max_evaluations=15, with_persistence=with_persistence
    )
    optimized, report = optimize(original, config, TIMING, options=options)

    check = verify_wcet_guarantee(
        original,
        optimized,
        config,
        TIMING,
        strict=False,
        with_persistence=with_persistence,
    )
    assert check.theorem1_holds, (
        f"Theorem 1 violated for seed {seed} on {config_id}: "
        f"τ_w {check.tau_original} -> {check.tau_optimized}"
    )
    assert check.condition2_holds, (
        f"Condition 2 violated for seed {seed} on {config_id}: misses "
        f"{check.misses_original} -> {check.misses_optimized}"
    )
    assert verify_prefetch_equivalence(original, optimized), (
        f"Definition 5 violated for seed {seed} on {config_id}: the "
        f"optimized program is not the original plus prefetches"
    )
    ineffective = verify_effectiveness(
        optimized, config, TIMING, with_persistence=with_persistence
    )
    assert ineffective == [], (
        f"Definition 10 violated for seed {seed} on {config_id}: "
        f"under-charged references {ineffective}"
    )
    assert verify_miss_reduction(
        original, optimized, config, TIMING, with_persistence=with_persistence
    )
    # the independent re-analysis agrees with the optimizer's own report
    assert check.tau_optimized <= report.tau_original + 1e-6
    return report


class TestGuaranteesDeterministic:
    """Fast, fixed-seed slice of the invariants — runs in tier-1."""

    @pytest.mark.parametrize("seed", (0, 7, 23))
    @pytest.mark.parametrize("config_id", CONFIG_SAMPLE[:2])
    def test_guarantees_hold(self, seed, config_id):
        _check_all_guarantees(seed, config_id, with_persistence=True)

    def test_guarantees_hold_under_classic_baseline(self):
        _check_all_guarantees(11, CONFIG_SAMPLE[0], with_persistence=False)

    def test_some_sampled_case_actually_inserts(self):
        """Guard against vacuity: the sample must exercise insertions."""
        inserted = 0
        for seed in range(6):
            report = _check_all_guarantees(
                seed, CONFIG_SAMPLE[0], with_persistence=True
            )
            inserted += report.prefetch_count
        assert inserted > 0, "no generated program accepted any prefetch"


@pytest.mark.slow
class TestGuaranteesPropertyBased:
    """Wide hypothesis sweep (Theorem 1 / Def. 5 / Def. 10)."""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        config_id=st.sampled_from(CONFIG_SAMPLE),
    )
    def test_guarantees_hold_for_random_programs(self, seed, config_id):
        _check_all_guarantees(seed, config_id, with_persistence=True)

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        config_id=st.sampled_from(CONFIG_SAMPLE),
    )
    def test_guarantees_hold_under_classic_baseline(self, seed, config_id):
        _check_all_guarantees(seed, config_id, with_persistence=False)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_unlimited_budget_still_sound(self, seed):
        """No evaluation cap: the gates alone must uphold Theorem 1."""
        config = TABLE2[CONFIG_SAMPLE[0]]
        original = random_program(seed, target_size=40)
        optimized, _ = optimize(
            original,
            config,
            TIMING,
            options=OptimizerOptions(max_evaluations=None),
        )
        check = verify_wcet_guarantee(
            original, optimized, config, TIMING, strict=False
        )
        assert check.theorem1_holds
        assert verify_prefetch_equivalence(original, optimized)
