"""Tests for the 37 Mälardalen structural clones and the registry."""

from __future__ import annotations

import pytest

from repro.bench.malardalen import FACTORIES
from repro.bench.registry import (
    PROGRAM_IDS,
    TABLE1,
    load,
    load_all,
    program_id,
    program_names,
)
from repro.cache.config import CacheConfig
from repro.errors import ExperimentError
from repro.program.acfg import build_acfg
from repro.sim.executor import block_trace

EXPECTED_NAMES = sorted(
    [
        "adpcm", "bs", "bsort100", "cnt", "compress", "cover", "crc",
        "duff", "edn", "expint", "fac", "fdct", "fft1", "fibcall", "fir",
        "icall", "insertsort", "janne_complex", "jfdctint", "lcdnum",
        "lms", "ludcmp", "matmult", "minver", "ndes", "ns", "nsichneu",
        "prime", "qsort-exam", "qurt", "recursion", "select", "sqrt",
        "st", "statemate", "ud", "whet",
    ]
)


class TestRegistry:
    def test_exactly_37_programs(self):
        assert len(FACTORIES) == 37
        assert program_names() == EXPECTED_NAMES

    def test_table1_ids_are_alphabetical(self):
        assert TABLE1["p1"] == "adpcm"
        assert TABLE1["p37"] == "whet"
        assert len(TABLE1) == 37
        assert list(TABLE1.values()) == EXPECTED_NAMES

    def test_load_by_name_and_id(self):
        by_name = load("matmult")
        by_id = load(PROGRAM_IDS["matmult"])
        assert by_name.name == by_id.name == "matmult"

    def test_unknown_program_rejected(self):
        with pytest.raises(ExperimentError):
            load("quicksort3000")
        with pytest.raises(ExperimentError):
            program_id("quicksort3000")

    def test_factories_return_fresh_instances(self):
        a = load("bs")
        b = load("bs")
        assert a is not b
        a.insert_prefetch(a.blocks[1].name, 0, a.blocks[2].instructions[0].uid)
        assert b.prefetch_count == 0


@pytest.mark.parametrize("name", EXPECTED_NAMES)
class TestEveryProgram:
    def test_builds_and_validates(self, name):
        cfg = load(name)
        cfg.validate()
        assert cfg.name == name
        assert cfg.instruction_count >= 10

    def test_expands_for_both_block_sizes(self, name):
        cfg = load(name)
        for block_size in (16, 32):
            acfg = build_acfg(cfg, block_size=block_size)
            acfg.validate()
            assert acfg.ref_count >= cfg.instruction_count

    def test_executes_deterministically(self, name):
        cfg = load(name)
        first = [b.name for b in block_trace(cfg, seed=7)]
        second = [b.name for b in block_trace(cfg, seed=7)]
        assert first == second
        assert first


class TestSuiteShape:
    def test_code_sizes_span_cache_range(self):
        sizes = {name: load(name).instruction_count * 4 for name in EXPECTED_NAMES}
        assert min(sizes.values()) < 256, "suite needs tiny programs"
        assert max(sizes.values()) > 4096, "suite needs cache-busting programs"

    def test_loop_bounds_present_wherever_loops_exist(self):
        for name in EXPECTED_NAMES:
            cfg = load(name)
            for loop in cfg.loops.values():
                assert loop.bound >= 1
                assert 1 <= loop.sim_iterations <= loop.bound

    def test_miss_rates_span_paper_range(self, timing):
        """Section 5: cache sizes chosen so the average pre-optimization
        miss rate spans roughly 1%-10%."""
        from repro.sim.machine import simulate

        small = CacheConfig(1, 16, 256)
        large = CacheConfig(4, 32, 8192)
        small_rates, large_rates = [], []
        for name in EXPECTED_NAMES:
            cfg = load(name)
            small_rates.append(simulate(cfg, small, timing, seed=1).miss_rate)
            large_rates.append(simulate(cfg, large, timing, seed=1).miss_rate)
        small_avg = sum(small_rates) / len(small_rates)
        large_avg = sum(large_rates) / len(large_rates)
        assert small_avg > large_avg
        assert 0.01 <= large_avg <= 0.12
        assert 0.03 <= small_avg <= 0.25
