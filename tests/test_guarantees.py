"""Tests for the independent guarantee checkers."""

from __future__ import annotations

import pytest

from repro.core.guarantees import (
    GuaranteeCheck,
    verify_effectiveness,
    verify_miss_reduction,
    verify_prefetch_equivalence,
    verify_wcet_guarantee,
)
from repro.core.optimizer import optimize
from repro.errors import GuaranteeViolation
from repro.program.builder import ProgramBuilder


def _program():
    b = ProgramBuilder("g")
    b.code(4)
    with b.loop(bound=10, sim_iterations=8):
        b.code(90)
    b.code(2)
    return b.build()


class TestGuaranteeCheck:
    def test_flags(self):
        check = GuaranteeCheck(100.0, 90.0, 10, 8, [])
        assert check.theorem1_holds
        assert check.condition2_holds
        assert check.all_effective
        bad = GuaranteeCheck(100.0, 101.0, 10, 11, [7])
        assert not bad.theorem1_holds
        assert not bad.condition2_holds
        assert not bad.all_effective


class TestVerifyWCETGuarantee:
    def test_identical_programs_pass(self, tiny_cache, timing):
        cfg = _program()
        check = verify_wcet_guarantee(cfg, cfg.clone(), tiny_cache, timing)
        assert check.theorem1_holds
        assert check.tau_original == check.tau_optimized

    def test_strict_mode_raises_on_regression(self, tiny_cache, timing):
        """A hand-made BAD transformation (a prefetch that relocates
        everything but saves nothing) must be caught."""
        cfg = _program()
        bad = cfg.clone()
        # Prefetch the entry block itself: zero benefit, pure relocation.
        entry_uid = bad.blocks[0].instructions[0].uid
        bad.insert_prefetch(bad.blocks[1].name, 0, entry_uid)
        check = verify_wcet_guarantee(
            cfg, bad, tiny_cache, timing, strict=False
        )
        if not check.theorem1_holds:
            with pytest.raises(GuaranteeViolation):
                verify_wcet_guarantee(cfg, bad, tiny_cache, timing, strict=True)

    def test_optimizer_output_always_passes(self, tiny_cache, timing):
        cfg = _program()
        optimized, _ = optimize(cfg, tiny_cache, timing)
        check = verify_wcet_guarantee(cfg, optimized, tiny_cache, timing)
        assert check.theorem1_holds


class TestPrefetchEquivalence:
    def test_equivalent_after_insertion(self, tiny_cache, timing):
        cfg = _program()
        optimized, _ = optimize(cfg, tiny_cache, timing)
        assert verify_prefetch_equivalence(cfg, optimized)

    def test_detects_removed_instruction(self):
        cfg = _program()
        other = cfg.clone()
        other.blocks[1].instructions.pop()
        assert not verify_prefetch_equivalence(cfg, other)

    def test_detects_prefetch_in_original(self):
        cfg = _program()
        uid = cfg.blocks[1].instructions[0].uid
        cfg.insert_prefetch(cfg.blocks[0].name, 0, uid)
        assert not verify_prefetch_equivalence(cfg, cfg.clone())

    def test_detects_block_set_mismatch(self):
        cfg = _program()
        other = _program()  # different builder: same shapes, same names
        assert verify_prefetch_equivalence(cfg, other)


class TestEffectiveness:
    def test_clean_program_has_no_violations(self, tiny_cache, timing):
        assert verify_effectiveness(_program(), tiny_cache, timing) == []

    def test_late_prefetch_is_latency_guarded(self, tiny_cache, timing):
        """A prefetch inserted immediately before its use cannot hide
        Λ=30 cycles: the analysis must charge that use the miss latency
        (latency guard), after which the soundness check is clean."""
        from repro.analysis.wcet import analyze_wcet
        from repro.program.acfg import build_acfg

        cfg = _program()
        loop = next(iter(cfg.loops.values()))
        body = cfg.block(loop.header)
        target = body.instructions[40]
        cfg.insert_prefetch(body.name, 39, target.uid)
        acfg = build_acfg(cfg, tiny_cache.block_size)
        wcet = analyze_wcet(acfg, tiny_cache, timing)
        guarded_uids = {
            acfg.vertex(rid).instr.uid for rid in wcet.latency_guarded
        }
        assert target.uid in guarded_uids
        # with the guard in place, nothing is under-charged
        assert verify_effectiveness(cfg, tiny_cache, timing) == []

    def test_early_prefetch_not_guarded(self, tiny_cache, timing):
        """With 30+ miss cycles of slack, the guard leaves the hit."""
        from repro.analysis.wcet import analyze_wcet
        from repro.program.acfg import build_acfg

        cfg = _program()
        loop = next(iter(cfg.loops.values()))
        body = cfg.block(loop.header)
        target = body.instructions[85]
        cfg.insert_prefetch(body.name, 0, target.uid)
        acfg = build_acfg(cfg, tiny_cache.block_size)
        wcet = analyze_wcet(acfg, tiny_cache, timing)
        guarded_uids = {
            acfg.vertex(rid).instr.uid for rid in wcet.latency_guarded
        }
        assert target.uid not in guarded_uids
        assert verify_effectiveness(cfg, tiny_cache, timing) == []


class TestMissReduction:
    def test_optimizer_reduces_misses(self, tiny_cache, timing):
        cfg = _program()
        optimized, _ = optimize(cfg, tiny_cache, timing)
        assert verify_miss_reduction(cfg, optimized, tiny_cache, timing)
