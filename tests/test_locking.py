"""Tests for the static cache-locking baseline."""

from __future__ import annotations

import pytest

from repro.analysis.wcet import analyze_wcet
from repro.cache.config import CacheConfig
from repro.errors import SimulationError
from repro.program.acfg import build_acfg
from repro.sim.locking import (
    locked_wcet,
    select_locked_blocks,
    simulate_locked,
)


class TestSelection:
    def test_respects_per_set_capacity(self, thrash_program, tiny_cache):
        acfg = build_acfg(thrash_program, block_size=tiny_cache.block_size)
        locked = select_locked_blocks(acfg, tiny_cache)
        per_set = {}
        for block in locked:
            per_set.setdefault(tiny_cache.set_index(block), []).append(block)
        for blocks in per_set.values():
            assert len(blocks) <= tiny_cache.associativity

    def test_prefers_heavier_blocks(self, loop_program, tiny_cache):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        weights = {0: 1.0, 16 // 16: 100.0}
        # craft explicit weights: block 1 wins its set over block... use ids present
        locked = select_locked_blocks(acfg, tiny_cache, weights={0: 1.0, 16: 5.0})
        assert 16 in locked  # both map to set 0; heavier one is locked
        assert 0 not in locked

    def test_default_weights_favor_loop_body(self, loop_program, tiny_cache):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        locked = select_locked_blocks(acfg, tiny_cache)
        # loop-body blocks execute ~10x the entry block; entry block (0)
        # shares set 0 with nothing else here, so just check non-empty
        assert locked


class TestLockedWCET:
    def test_locked_blocks_hit_everything_else_misses(
        self, loop_program, tiny_cache, timing
    ):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        all_blocks = {
            acfg.block_of(v.rid) for v in acfg.ref_vertices()
        }
        full = locked_wcet(acfg, timing, all_blocks)
        none = locked_wcet(acfg, timing, set())
        refs_weighted = sum(
            acfg.multiplier[v.rid]
            for v in acfg.ref_vertices()
            if full.on_path[v.rid]
        )
        assert full.objective == pytest.approx(refs_weighted * timing.hit_cycles)
        assert none.objective == pytest.approx(refs_weighted * timing.miss_cycles)

    def test_locking_beats_nothing_when_cache_thrashes(
        self, thrash_program, tiny_cache, timing
    ):
        acfg = build_acfg(thrash_program, block_size=tiny_cache.block_size)
        locked = select_locked_blocks(acfg, tiny_cache)
        with_lock = locked_wcet(acfg, timing, locked)
        without = locked_wcet(acfg, timing, set())
        assert with_lock.objective < without.objective

    def test_unlocked_analysis_beats_locking_on_phased_code(self, timing):
        """The paper's core argument: locking gives up performance the
        analysis could have proven.

        Two sequential loop phases each fit the cache, but together they
        do not: locking can only keep one phase resident, while the
        unlocked cache re-fills between phases and hits in both.
        """
        from repro.program.builder import ProgramBuilder

        b = ProgramBuilder("phased")
        with b.loop(bound=20, name="phaseA"):
            b.code(40)  # 160 B region
        with b.loop(bound=20, name="phaseB"):
            b.code(40)  # another 160 B region
        cfg = b.build()
        config = CacheConfig(1, 16, 256)
        acfg = build_acfg(cfg, block_size=config.block_size)
        unlocked = analyze_wcet(acfg, config, timing)
        locked = locked_wcet(
            acfg, timing, select_locked_blocks(acfg, config)
        )
        assert unlocked.tau_w < locked.objective


class TestLockedSimulation:
    def test_hit_miss_split(self, loop_program, tiny_cache, timing):
        acfg = build_acfg(loop_program, block_size=tiny_cache.block_size)
        locked = select_locked_blocks(acfg, tiny_cache)
        result = simulate_locked(loop_program, tiny_cache, timing, locked, seed=1)
        assert result.fetches == result.hits + result.demand_misses
        assert result.fills == len(locked)

    def test_empty_lock_set_all_misses(self, straight_program, tiny_cache, timing):
        result = simulate_locked(
            straight_program, tiny_cache, timing, set(), seed=0
        )
        assert result.hits == 0
        assert result.demand_misses == result.fetches

    def test_prefetches_rejected(self, loop_program, tiny_cache, timing):
        target = loop_program.blocks[3].instructions[0]
        loop_program.insert_prefetch(loop_program.blocks[1].name, 0, target.uid)
        with pytest.raises(SimulationError):
            simulate_locked(loop_program, tiny_cache, timing, set(), seed=0)

    def test_invalid_block_ids_rejected(self, loop_program, tiny_cache, timing):
        with pytest.raises(SimulationError):
            simulate_locked(loop_program, tiny_cache, timing, {-3}, seed=0)
