"""Tests for the energy substrate: technologies, CACTI model, DRAM,
and the per-run accounting."""

from __future__ import annotations

import pytest

from repro.cache.config import CacheConfig, TABLE2
from repro.energy.cacti import CacheEnergyModel, cacti_model
from repro.energy.dram import DRAMModel
from repro.energy.metrics import (
    EnergyBreakdown,
    MemoryEventCounts,
    account_energy,
)
from repro.energy.technology import (
    TECH_32NM,
    TECH_45NM,
    TECHNOLOGIES,
    technology,
)
from repro.errors import ReproError


class TestTechnology:
    def test_registry(self):
        assert set(TECHNOLOGIES) == {"45nm", "32nm"}
        assert technology("45nm") is TECH_45NM
        with pytest.raises(ReproError):
            technology("22nm")

    def test_scaling_directions(self):
        # smaller node: cheaper switching, relatively worse leakage
        assert TECH_32NM.dynamic_scale < TECH_45NM.dynamic_scale
        assert TECH_32NM.leakage_scale > TECH_45NM.leakage_scale
        assert TECH_32NM.clock_hz > TECH_45NM.clock_hz

    def test_cycle_conversion_roundtrip(self):
        cycles = TECH_45NM.cycles(100e-9)
        assert cycles == 50  # 100 ns at 500 MHz
        assert TECH_45NM.seconds(50) == pytest.approx(100e-9)

    def test_cycles_rounds_up(self):
        assert TECH_45NM.cycles(1e-10) == 1


class TestCactiModel:
    def test_energy_grows_with_capacity(self):
        small = cacti_model(CacheConfig(1, 16, 256), TECH_45NM)
        large = cacti_model(CacheConfig(1, 16, 8192), TECH_45NM)
        assert large.read_energy_j > small.read_energy_j
        assert large.leakage_w > small.leakage_w

    def test_energy_grows_with_associativity(self):
        direct = cacti_model(CacheConfig(1, 16, 1024), TECH_45NM)
        four_way = cacti_model(CacheConfig(4, 16, 1024), TECH_45NM)
        assert four_way.read_energy_j > direct.read_energy_j

    def test_32nm_cheaper_switching_higher_leakage(self):
        cfg = CacheConfig(2, 16, 1024)
        a = cacti_model(cfg, TECH_45NM)
        b = cacti_model(cfg, TECH_32NM)
        assert b.read_energy_j < a.read_energy_j
        assert b.leakage_w > a.leakage_w

    def test_fill_costs_more_than_read(self):
        model = cacti_model(CacheConfig(2, 16, 1024), TECH_45NM)
        assert model.fill_energy_j > model.read_energy_j

    def test_miss_penalty_includes_refill(self):
        m16 = cacti_model(CacheConfig(1, 16, 1024), TECH_45NM)
        m32 = cacti_model(CacheConfig(1, 32, 1024), TECH_45NM)
        assert m32.miss_penalty_cycles > m16.miss_penalty_cycles

    def test_timing_model_export(self):
        model = cacti_model(CacheConfig(1, 16, 1024), TECH_45NM)
        timing = model.timing_model(prefetch_issue_cycles=2)
        assert timing.hit_cycles == model.hit_cycles
        assert timing.miss_penalty_cycles == model.miss_penalty_cycles
        assert timing.prefetch_issue_cycles == 2

    def test_all_table2_configs_have_models(self):
        for cfg in TABLE2.values():
            for tech in TECHNOLOGIES.values():
                model = cacti_model(cfg, tech)
                assert model.read_energy_j > 0
                assert model.leakage_w > 0
                assert model.hit_cycles >= 1


class TestDRAM:
    def test_energy_scales_with_block_size(self):
        dram = DRAMModel(TECH_45NM)
        assert dram.access_energy_j(32) > dram.access_energy_j(16)
        with pytest.raises(ReproError):
            dram.access_energy_j(0)

    def test_latency_cycles(self):
        dram = DRAMModel(TECH_45NM)
        assert dram.latency_cycles() == TECH_45NM.cycles(TECH_45NM.dram_latency_s)

    def test_dram_dwarfs_cache_access(self):
        dram = DRAMModel(TECH_45NM)
        cache = cacti_model(CacheConfig(2, 16, 1024), TECH_45NM)
        assert dram.access_energy_j(16) > 20 * cache.read_energy_j


class TestEventCounts:
    def test_validation(self):
        with pytest.raises(ReproError):
            MemoryEventCounts(-1, 0, 0, 0, 0)
        with pytest.raises(ReproError):
            MemoryEventCounts(1, 2, 0, 0, 0)  # misses > fetches
        with pytest.raises(ReproError):
            MemoryEventCounts(1, 0, 0, 0, -5.0)

    def test_l2_counter_validation(self):
        with pytest.raises(ReproError):
            MemoryEventCounts(10, 5, 0, 5, 0.0, l2_accesses=-1)
        with pytest.raises(ReproError):
            MemoryEventCounts(10, 5, 0, 5, 0.0, l2_hits=-1)
        with pytest.raises(ReproError):
            MemoryEventCounts(10, 5, 0, 5, 0.0, l2_fills=-2)
        with pytest.raises(ReproError):  # hits > accesses
            MemoryEventCounts(10, 5, 0, 5, 0.0, l2_accesses=3, l2_hits=4)
        with pytest.raises(ReproError):  # hits > misses + prefetches
            MemoryEventCounts(10, 2, 1, 2, 0.0, l2_accesses=9, l2_hits=4)

    def test_dram_transfers_subtracts_l2_service(self):
        counts = MemoryEventCounts(
            100, 20, 10, 30, 500.0, l2_accesses=30, l2_hits=12, l2_fills=18
        )
        assert counts.dram_transfers == 18
        # without an L2, the legacy formula: every transfer hits DRAM
        legacy = MemoryEventCounts(100, 20, 10, 30, 500.0)
        assert legacy.dram_transfers == 30


class TestAccounting:
    def _counts(self, fetches=1000, misses=50, pf=0, fills=50, cycles=3000.0):
        return MemoryEventCounts(fetches, misses, pf, fills, cycles)

    def test_total_is_sum_of_parts(self):
        model = cacti_model(CacheConfig(2, 16, 1024), TECH_45NM)
        breakdown = account_energy(self._counts(), model, DRAMModel(TECH_45NM))
        assert breakdown.total_j == pytest.approx(
            breakdown.cache_dynamic_j + breakdown.dram_dynamic_j + breakdown.static_j
        )
        assert 0.0 <= breakdown.static_share <= 1.0

    def test_fewer_misses_means_less_energy(self):
        model = cacti_model(CacheConfig(2, 16, 1024), TECH_45NM)
        dram = DRAMModel(TECH_45NM)
        high = account_energy(
            self._counts(misses=100, fills=100, cycles=5000), model, dram
        )
        low = account_energy(
            self._counts(misses=10, fills=10, cycles=1500), model, dram
        )
        assert low.total_j < high.total_j

    def test_prefetch_transfers_cost_dram_energy(self):
        model = cacti_model(CacheConfig(2, 16, 1024), TECH_45NM)
        dram = DRAMModel(TECH_45NM)
        without = account_energy(self._counts(pf=0), model, dram)
        with_pf = account_energy(self._counts(pf=20, fills=70), model, dram)
        assert with_pf.dram_dynamic_j > without.dram_dynamic_j

    def test_static_energy_scales_with_time(self):
        model = cacti_model(CacheConfig(2, 16, 8192), TECH_45NM)
        dram = DRAMModel(TECH_45NM)
        short = account_energy(self._counts(cycles=1000), model, dram)
        long = account_energy(self._counts(cycles=10000), model, dram)
        assert long.static_j == pytest.approx(10 * short.static_j)

    def test_zero_run(self):
        model = cacti_model(CacheConfig(2, 16, 1024), TECH_45NM)
        breakdown = account_energy(
            MemoryEventCounts(0, 0, 0, 0, 0.0), model, DRAMModel(TECH_45NM)
        )
        assert breakdown.total_j == 0.0
        assert breakdown.static_share == 0.0

    def test_zero_run_with_l2_model(self):
        from repro.energy.cacti import cacti_l2_model

        l1 = cacti_model(CacheConfig(2, 16, 1024), TECH_45NM)
        l2 = cacti_l2_model(CacheConfig(4, 16, 4096), TECH_45NM)
        breakdown = account_energy(
            MemoryEventCounts(0, 0, 0, 0, 0.0), l1, DRAMModel(TECH_45NM),
            l2_model=l2,
        )
        assert breakdown.total_j == 0.0
        assert breakdown.l2_dynamic_j == 0.0
        assert breakdown.l2_static_j == 0.0
        assert breakdown.static_share == 0.0

    def test_l2_breakdown_fields_default_zero(self):
        breakdown = EnergyBreakdown(
            cache_dynamic_j=1.0, dram_dynamic_j=2.0,
            cache_static_j=3.0, dram_static_j=4.0,
        )
        assert breakdown.l2_dynamic_j == 0.0
        assert breakdown.l2_static_j == 0.0
        assert breakdown.dynamic_j == pytest.approx(3.0)
        assert breakdown.static_j == pytest.approx(7.0)
        assert breakdown.total_j == pytest.approx(10.0)

    def test_l2_hits_redirect_dram_energy_to_sram(self):
        """Every L2-served transfer drops one (expensive) DRAM access
        and adds one (cheap) L2 read — energy must strictly fall."""
        from repro.energy.cacti import cacti_l2_model

        l1 = cacti_model(CacheConfig(2, 16, 1024), TECH_45NM)
        l2 = cacti_l2_model(CacheConfig(4, 16, 4096), TECH_45NM)
        dram = DRAMModel(TECH_45NM)
        cold = account_energy(
            MemoryEventCounts(1000, 50, 0, 50, 3000.0,
                              l2_accesses=50, l2_hits=0, l2_fills=50),
            l1, dram, l2_model=l2,
        )
        warm = account_energy(
            MemoryEventCounts(1000, 50, 0, 50, 3000.0,
                              l2_accesses=50, l2_hits=40, l2_fills=10),
            l1, dram, l2_model=l2,
        )
        assert warm.dram_dynamic_j < cold.dram_dynamic_j
        assert warm.total_j < cold.total_j

    def test_big_cache_leaks_more_than_small(self):
        dram = DRAMModel(TECH_45NM)
        counts = self._counts(cycles=100000)
        small = account_energy(
            counts, cacti_model(CacheConfig(1, 16, 256), TECH_45NM), dram
        )
        big = account_energy(
            counts, cacti_model(CacheConfig(1, 16, 8192), TECH_45NM), dram
        )
        assert big.cache_static_j > 10 * small.cache_static_j
        # DRAM background is capacity-independent
        assert big.dram_static_j == pytest.approx(small.dram_static_j)

    def test_background_power_makes_energy_time_proportional(self):
        """The paper's energy improvements track ACET improvements;
        that requires the static (time) share to be substantial."""
        model = cacti_model(CacheConfig(1, 16, 1024), TECH_45NM)
        dram = DRAMModel(TECH_45NM)
        counts = self._counts(fetches=3000, misses=150, fills=150, cycles=7650)
        breakdown = account_energy(counts, model, dram)
        assert breakdown.static_share > 0.25
