"""Unit tests for supporting pieces: VIVU helpers, slack spans,
structure traversal, trace validation, report rendering."""

from __future__ import annotations

import pytest

from repro.analysis.slack import rest_instance_spans
from repro.errors import SimulationError
from repro.experiments.figures import CapacitySeries
from repro.experiments.report import format_percent, render_series_table
from repro.program.acfg import build_acfg
from repro.program.builder import ProgramBuilder
from repro.program.structure import count_nodes, walk
from repro.program.vivu import (
    ContextElement,
    TOP,
    context_depth,
    context_label,
    enter_call,
    enter_loop_first,
    enter_loop_rest,
    execution_multiplier,
)
from repro.sim.trace import SimulationResult


class TestVivuHelpers:
    def test_context_construction(self):
        ctx = enter_loop_first(TOP, "L0")
        ctx = enter_loop_rest(ctx, "L1")
        ctx = enter_call(ctx, "cs0")
        assert context_depth(ctx) == 3
        assert context_label(ctx) == "L0.F/L1.R/@cs0"
        assert context_label(TOP) == "<top>"

    def test_execution_multiplier(self, nested_program):
        outer = [n for n, lp in nested_program.loops.items() if lp.parent is None][0]
        inner = [n for n, lp in nested_program.loops.items() if lp.parent][0]
        ctx = enter_loop_rest(enter_loop_rest(TOP, outer), inner)
        bounds = nested_program.loops
        expected = (bounds[outer].bound - 1) * (bounds[inner].bound - 1)
        assert execution_multiplier(nested_program, ctx) == expected

    def test_first_and_call_do_not_scale(self, nested_program):
        outer = [n for n, lp in nested_program.loops.items() if lp.parent is None][0]
        ctx = enter_call(enter_loop_first(TOP, outer), "cs1")
        assert execution_multiplier(nested_program, ctx) == 1


class TestSlackSpans:
    def test_spans_cover_every_back_edge(self, nested_program):
        acfg = build_acfg(nested_program, block_size=16)
        spans = rest_instance_spans(acfg)
        joined = {j for j, _, _ in spans}
        assert joined == {dst for _, dst in acfg.back_edges}
        for join, last, exits in spans:
            assert join < last
            assert all(join < e <= last for e in exits)

    def test_no_loops_no_spans(self, straight_program):
        acfg = build_acfg(straight_program, block_size=16)
        assert rest_instance_spans(acfg) == []


class TestStructureTraversal:
    def test_walk_visits_every_node(self, nested_program):
        nodes = list(walk(nested_program.structure))
        assert nodes[0] is nested_program.structure
        assert count_nodes(nested_program.structure) == len(nodes)

    def test_iter_blocks_in_program_order(self):
        b = ProgramBuilder("p")
        b.block_label("first")
        b.code(1)
        b.block_label("second")
        b.code(1)
        cfg = b.build()
        names = list(cfg.structure.iter_blocks())
        assert names.index("first") < names.index("second")


class TestTraceValidation:
    def test_inconsistent_counts_rejected(self):
        result = SimulationResult(program="x", fetches=5, hits=2, demand_misses=2)
        with pytest.raises(SimulationError):
            result.validate()

    def test_useful_cannot_exceed_transfers(self):
        result = SimulationResult(
            program="x",
            fetches=1,
            hits=1,
            prefetch_transfers=1,
            prefetch_instructions=1,
            useful_prefetches=2,
        )
        with pytest.raises(SimulationError):
            result.validate()

    def test_sw_transfers_capped_by_instructions(self):
        result = SimulationResult(
            program="x",
            fetches=1,
            hits=1,
            prefetch_instructions=1,
            prefetch_transfers=3,
        )
        with pytest.raises(SimulationError):
            result.validate()

    def test_miss_rate_of_empty_run(self):
        assert SimulationResult(program="x").miss_rate == 0.0


class TestReportRendering:
    def test_format_percent(self):
        assert format_percent(0.0).strip() == "0.0%"
        assert format_percent(1.0).strip() == "100.0%"

    def test_series_table_aligns_capacities(self):
        a = CapacitySeries("alpha", {256: 0.1, 1024: 0.2})
        b = CapacitySeries("beta", {256: 0.3})
        text = render_series_table([a, b], "title")
        assert "title" in text
        assert "256" in text and "1024" in text
        # missing point renders as 0.0%
        assert text.count("0.0%") >= 1

    def test_series_rows_sorted(self):
        series = CapacitySeries("s", {1024: 0.2, 256: 0.1})
        assert series.as_rows() == [(256, 0.1), (1024, 0.2)]

    def test_bar_chart_scales_and_signs(self):
        from repro.experiments.report import render_bar_chart

        up = CapacitySeries("up", {256: 0.2, 1024: 0.1})
        down = CapacitySeries("down", {256: -0.1})
        text = render_bar_chart([up, down], "chart", width=10)
        assert "chart" in text
        # the peak bar uses the full width
        assert "#" * 10 in text
        # the negative bar is marked
        assert "-|" in text

    def test_bar_chart_empty_series(self):
        from repro.experiments.report import render_bar_chart

        text = render_bar_chart([CapacitySeries("empty")], "chart")
        assert "chart" in text
