"""Tests for ACFG construction (VIVU expansion, joins, back edges)."""

from __future__ import annotations

import pytest

from repro.errors import ProgramModelError
from repro.program.acfg import VertexKind, build_acfg
from repro.program.builder import ProgramBuilder
from repro.program.vivu import FIRST, REST


def contexts_of(acfg, uid):
    return [
        v.context for v in acfg.ref_vertices() if v.instr and v.instr.uid == uid
    ]


class TestTopology:
    def test_poles(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        assert acfg.vertices[acfg.source].kind is VertexKind.SOURCE
        assert acfg.vertices[acfg.sink].kind is VertexKind.SINK

    def test_edges_ascend_rids(self, nested_program):
        acfg = build_acfg(nested_program, block_size=16)
        for rid in range(len(acfg.vertices)):
            for succ in acfg.successors(rid):
                assert succ > rid

    def test_every_vertex_reachable(self, nested_program):
        acfg = build_acfg(nested_program, block_size=16)
        for rid in range(1, len(acfg.vertices)):
            assert acfg.predecessors(rid)

    def test_predecessor_successor_symmetry(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        for rid in range(len(acfg.vertices)):
            for succ in acfg.successors(rid):
                assert rid in acfg.predecessors(succ)

    def test_straight_line_is_a_chain(self, straight_program):
        acfg = build_acfg(straight_program, block_size=16)
        for rid in range(len(acfg.vertices) - 1):
            assert list(acfg.successors(rid)) == [rid + 1]


class TestVIVUExpansion:
    def test_loop_body_has_first_and_rest_contexts(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        loop = next(iter(loop_program.loops.values()))
        header_instr = loop_program.block(loop.header).instructions[0]
        ctxs = contexts_of(acfg, header_instr.uid)
        kinds = sorted(el.kind for ctx in ctxs for el in ctx)
        assert kinds == [FIRST, REST]

    def test_bound_one_loop_has_no_rest_instance(self):
        b = ProgramBuilder("p")
        with b.loop(bound=1):
            b.code(2)
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=16)
        assert acfg.back_edges == []
        loop = next(iter(cfg.loops.values()))
        header_instr = cfg.block(loop.header).instructions[0]
        assert len(contexts_of(acfg, header_instr.uid)) == 1

    def test_back_edges_target_rest_entry_join(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        assert acfg.back_edges
        for src, dst in acfg.back_edges:
            assert acfg.vertices[dst].kind is VertexKind.JOIN
            assert src > dst

    def test_nested_loops_multiply_contexts(self, nested_program):
        acfg = build_acfg(nested_program, block_size=16)
        inner = [lp for lp in nested_program.loops.values() if lp.parent][0]
        inner_instr = nested_program.block(inner.header).instructions[0]
        # inner body: (outer F/R) x (inner F/R) = 4 contexts
        assert len(contexts_of(acfg, inner_instr.uid)) == 4

    def test_multiplier_uses_bound_minus_one(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        loop = next(iter(loop_program.loops.values()))
        header_instr = loop_program.block(loop.header).instructions[0]
        mults = sorted(
            acfg.multiplier[v.rid]
            for v in acfg.ref_vertices()
            if v.instr and v.instr.uid == header_instr.uid
        )
        assert mults == [1, loop.bound - 1]

    def test_function_inlined_per_call_site(self):
        b = ProgramBuilder("p")
        with b.function("f"):
            b.code(2)
        b.call("f")
        b.code(1)
        b.call("f")
        cfg = b.build()
        acfg = build_acfg(cfg, block_size=16)
        fn_instr = cfg.block(cfg.functions["f"].entry_block).instructions[0]
        assert len(contexts_of(acfg, fn_instr.uid)) == 2

    def test_ref_count_excludes_poles_and_joins(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        non_refs = sum(1 for v in acfg.vertices if not v.is_ref)
        assert acfg.ref_count + non_refs == len(acfg.vertices)


class TestBlockMapping:
    def test_block_of_consistent_with_memory_map(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        for vertex in acfg.ref_vertices():
            assert acfg.block_of(vertex.rid) == acfg.memory_map.block_of(
                vertex.instr.uid
            )

    def test_block_of_join_raises(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        join = next(v for v in acfg.vertices if v.kind is VertexKind.JOIN)
        with pytest.raises(ProgramModelError):
            acfg.block_of(join.rid)

    def test_prefetch_target_block(self, loop_program):
        target = loop_program.blocks[3].instructions[0]
        loop_program.insert_prefetch(loop_program.blocks[1].name, 0, target.uid)
        acfg = build_acfg(loop_program, block_size=16)
        pf = next(v for v in acfg.ref_vertices() if v.is_prefetch)
        assert acfg.prefetch_target_block(pf.rid) == acfg.memory_map.block_of(
            target.uid
        )

    def test_prefetch_target_on_normal_vertex_raises(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        ref = next(iter(acfg.ref_vertices()))
        with pytest.raises(ProgramModelError):
            acfg.prefetch_target_block(ref.rid)

    def test_by_key_lookup(self, loop_program):
        acfg = build_acfg(loop_program, block_size=16)
        vertex = next(iter(acfg.ref_vertices()))
        assert acfg.by_key(vertex.instr.uid, vertex.context) == vertex.rid
        assert acfg.by_key(99999, ()) is None

    def test_missing_structure_rejected(self, loop_program):
        loop_program.structure = None
        with pytest.raises(ProgramModelError):
            build_acfg(loop_program, block_size=16)
