"""Unit tests for basic blocks, loops and the CFG container."""

from __future__ import annotations

import pytest

from repro.errors import LoopBoundError, ProgramModelError
from repro.program.builder import ProgramBuilder
from repro.program.cfg import (
    BasicBlock,
    BranchProfile,
    ControlFlowGraph,
    LoopInfo,
)
from repro.program.instructions import InstructionFactory, InstrKind


def _block(name: str, count: int, factory=None) -> BasicBlock:
    factory = factory or InstructionFactory()
    return BasicBlock(name, [factory.normal() for _ in range(count)])


class TestBasicBlock:
    def test_byte_size(self):
        assert _block("a", 5).byte_size == 20

    def test_insert_rejects_non_prefetch(self):
        block = _block("a", 2)
        with pytest.raises(ProgramModelError):
            block.insert(0, InstructionFactory(99).normal())

    def test_insert_prefetch_at_bounds(self):
        factory = InstructionFactory()
        block = BasicBlock("a", [factory.normal(), factory.normal()])
        block.insert(2, factory.prefetch(0))
        assert block.instructions[-1].is_prefetch
        with pytest.raises(ProgramModelError):
            block.insert(5, factory.prefetch(0))

    def test_strip_prefetches_returns_copy(self):
        factory = InstructionFactory()
        block = BasicBlock("a", [factory.normal()])
        block.insert(0, factory.prefetch(0))
        stripped = block.strip_prefetches()
        assert len(stripped) == 1
        assert len(block) == 2  # original untouched

    def test_index_of_missing_instruction(self):
        block = _block("a", 2)
        with pytest.raises(ProgramModelError):
            block.index_of(InstructionFactory(50).normal())


class TestBranchProfile:
    def test_probability_range_validated(self):
        with pytest.raises(ProgramModelError):
            BranchProfile(taken_prob=1.5)
        with pytest.raises(ProgramModelError):
            BranchProfile(taken_prob=-0.1)

    def test_empty_pattern_rejected(self):
        with pytest.raises(ProgramModelError):
            BranchProfile(pattern=())


class TestLoopInfo:
    def test_bound_must_be_positive(self):
        with pytest.raises(LoopBoundError):
            LoopInfo("l", "h", "h", ("h",), bound=0)

    def test_sim_iterations_defaults_to_bound(self):
        info = LoopInfo("l", "h", "h", ("h",), bound=7)
        assert info.sim_iterations == 7

    def test_sim_iterations_cannot_exceed_bound(self):
        with pytest.raises(LoopBoundError):
            LoopInfo("l", "h", "h", ("h",), bound=3, sim_iterations=4)


class TestControlFlowGraph:
    def test_duplicate_block_rejected(self):
        cfg = ControlFlowGraph("p")
        cfg.add_block(_block("a", 1))
        with pytest.raises(ProgramModelError):
            cfg.add_block(_block("a", 1))

    def test_edge_to_unknown_block_rejected(self):
        cfg = ControlFlowGraph("p")
        cfg.add_block(_block("a", 1))
        with pytest.raises(ProgramModelError):
            cfg.add_edge("a", "missing")

    def test_duplicate_edge_rejected(self):
        cfg = ControlFlowGraph("p")
        cfg.add_block(_block("a", 1, cfg.factory))
        cfg.add_block(_block("b", 1, cfg.factory))
        cfg.add_edge("a", "b")
        with pytest.raises(ProgramModelError):
            cfg.add_edge("a", "b")

    def test_insert_and_remove_prefetch_roundtrip(self, loop_program):
        before = loop_program.instruction_count
        version = loop_program.version
        target = loop_program.blocks[2].instructions[0]
        prefetch = loop_program.insert_prefetch(
            loop_program.blocks[1].name, 0, target.uid
        )
        assert loop_program.instruction_count == before + 1
        assert loop_program.version == version + 1
        assert loop_program.prefetch_count == 1
        loop_program.remove_prefetch(prefetch.uid)
        assert loop_program.instruction_count == before
        assert loop_program.prefetch_count == 0

    def test_remove_prefetch_rejects_normal_instruction(self, loop_program):
        uid = loop_program.blocks[0].instructions[0].uid
        with pytest.raises(ProgramModelError):
            loop_program.remove_prefetch(uid)

    def test_strip_prefetches(self, loop_program):
        target = loop_program.blocks[2].instructions[0]
        loop_program.insert_prefetch(loop_program.blocks[1].name, 0, target.uid)
        loop_program.insert_prefetch(loop_program.blocks[1].name, 0, target.uid)
        loop_program.strip_prefetches()
        assert loop_program.prefetch_count == 0

    def test_clone_is_deep(self, loop_program):
        clone = loop_program.clone()
        target = clone.blocks[2].instructions[0]
        clone.insert_prefetch(clone.blocks[1].name, 0, target.uid)
        assert clone.instruction_count == loop_program.instruction_count + 1
        assert loop_program.prefetch_count == 0

    def test_find_instruction(self, loop_program):
        instr = loop_program.blocks[1].instructions[0]
        block, idx = loop_program.find_instruction(instr.uid)
        assert block.name == loop_program.blocks[1].name
        assert idx == 0

    def test_find_instruction_missing(self, loop_program):
        with pytest.raises(ProgramModelError):
            loop_program.find_instruction(10_000)

    def test_loops_containing_orders_outermost_first(self, nested_program):
        inner = [
            lp for lp in nested_program.loops.values() if lp.parent is not None
        ][0]
        chain = nested_program.loops_containing(inner.header)
        assert len(chain) == 2
        assert chain[0].parent is None
        assert chain[1].name == inner.name

    def test_validate_passes_for_built_programs(self, nested_program):
        nested_program.validate()

    def test_instruction_uids_unique(self, nested_program):
        uids = [i.uid for i in nested_program.instructions()]
        assert len(uids) == len(set(uids))
