"""Tests for the ProgramBuilder DSL and its CFG lowering."""

from __future__ import annotations

import pytest

from repro.errors import ProgramModelError
from repro.program.builder import ProgramBuilder, entry_block_of, exit_blocks_of
from repro.program.instructions import InstrKind
from repro.program.structure import (
    CallNode,
    IfElseNode,
    LoopNode,
    SeqNode,
    SwitchNode,
)


class TestStraightLine:
    def test_entry_and_exit_blocks_wrap_main(self):
        b = ProgramBuilder("p")
        b.code(3)
        cfg = b.build()
        assert cfg.blocks[0].name == "__entry"
        assert cfg.blocks[-1].name == "__exit"
        assert cfg.entry is cfg.blocks[0]
        assert cfg.exit is cfg.block("__exit")

    def test_code_counts(self):
        b = ProgramBuilder("p")
        b.code(7)
        cfg = b.build()
        # 7 + 2 prologue + 1 epilogue
        assert cfg.instruction_count == 10

    def test_negative_code_count_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(ProgramModelError):
            b.code(-1)

    def test_build_twice_rejected(self):
        b = ProgramBuilder("p")
        b.code(1)
        b.build()
        with pytest.raises(ProgramModelError):
            b.build()

    def test_block_label_names_next_block(self):
        b = ProgramBuilder("p")
        b.block_label("work")
        b.code(2)
        cfg = b.build()
        assert any(block.name == "work" for block in cfg.blocks)


class TestLoops:
    def test_latch_appended_with_branch(self):
        b = ProgramBuilder("p")
        with b.loop(bound=5):
            b.code(2)
        cfg = b.build()
        loop = next(iter(cfg.loops.values()))
        latch = cfg.block(loop.latch)
        assert latch.instructions[-1].kind is InstrKind.BRANCH
        assert loop.header in cfg.successors(loop.latch)

    def test_loop_exit_edge(self):
        b = ProgramBuilder("p")
        with b.loop(bound=5):
            b.code(2)
        b.code(1)
        cfg = b.build()
        loop = next(iter(cfg.loops.values()))
        succs = cfg.successors(loop.latch)
        assert len(succs) == 2  # back edge + exit

    def test_nested_loop_parentage(self):
        b = ProgramBuilder("p")
        with b.loop(bound=3, name="outer"):
            with b.loop(bound=4, name="inner"):
                b.code(1)
        cfg = b.build()
        assert cfg.loops["inner"].parent == "outer"
        assert cfg.loops["outer"].parent is None
        assert set(cfg.loops["inner"].blocks) <= set(cfg.loops["outer"].blocks)

    def test_empty_loop_body_still_has_latch(self):
        b = ProgramBuilder("p")
        with b.loop(bound=2):
            pass
        cfg = b.build()
        loop = next(iter(cfg.loops.values()))
        assert loop.header == loop.latch


class TestConditionals:
    def test_if_else_shape(self):
        b = ProgramBuilder("p")
        b.code(1)
        with b.if_else(taken_prob=0.3) as arms:
            with arms.then_():
                b.code(2)
            with arms.else_():
                b.code(3)
        b.code(1)
        cfg = b.build()
        node = [
            n for n in cfg.structure.items if isinstance(n, IfElseNode)
        ][0]
        cond = cfg.block(node.cond_block)
        assert cond.instructions[-1].kind is InstrKind.BRANCH
        assert len(cfg.successors(node.cond_block)) == 2
        assert cfg.branch_profiles[node.cond_block].taken_prob == 0.3

    def test_if_then_has_fallthrough_edge(self):
        b = ProgramBuilder("p")
        with b.if_then(taken_prob=0.5):
            b.code(2)
        b.code(1)
        cfg = b.build()
        node = [n for n in cfg.structure.items if isinstance(n, IfElseNode)][0]
        succs = cfg.successors(node.cond_block)
        assert len(succs) == 2  # arm + fallthrough

    def test_then_arm_required(self):
        b = ProgramBuilder("p")
        with pytest.raises(ProgramModelError):
            with b.if_else() as arms:
                pass

    def test_else_before_then_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(ProgramModelError):
            with b.if_else() as arms:
                with arms.else_():
                    b.code(1)

    def test_empty_arm_padded_with_jump(self):
        b = ProgramBuilder("p")
        with b.if_else() as arms:
            with arms.then_():
                pass
            with arms.else_():
                b.code(1)
        cfg = b.build()
        node = [n for n in cfg.structure.items if isinstance(n, IfElseNode)][0]
        then_block = cfg.block(entry_block_of(node.then_node))
        assert then_block.instructions[-1].kind is InstrKind.JUMP


class TestSwitch:
    def test_cases_and_weights(self):
        b = ProgramBuilder("p")
        with b.switch(weights=[1, 2, 3]) as sw:
            for _ in range(3):
                with sw.case():
                    b.code(1)
        cfg = b.build()
        node = [n for n in cfg.structure.items if isinstance(n, SwitchNode)][0]
        assert len(node.cases) == 3
        assert node.weights == (1, 2, 3)
        assert len(cfg.successors(node.selector_block)) == 3

    def test_switch_without_cases_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(ProgramModelError):
            with b.switch():
                pass

    def test_cases_end_with_break_jump(self):
        b = ProgramBuilder("p")
        with b.switch() as sw:
            with sw.case():
                b.code(2)
        cfg = b.build()
        node = [n for n in cfg.structure.items if isinstance(n, SwitchNode)][0]
        case_exit = cfg.block(exit_blocks_of(node.cases[0])[0])
        assert case_exit.instructions[-1].kind is InstrKind.JUMP


class TestFunctions:
    def test_function_laid_out_after_main(self):
        b = ProgramBuilder("p")
        with b.function("f"):
            b.code(4)
        b.call("f")
        cfg = b.build()
        names = [blk.name for blk in cfg.blocks]
        assert names.index("__exit") < names.index("f.bb0")

    def test_function_ends_with_return(self):
        b = ProgramBuilder("p")
        with b.function("f"):
            b.code(2)
        b.call("f")
        cfg = b.build()
        info = cfg.functions["f"]
        last = cfg.block(info.exit_blocks[-1]).instructions[-1]
        assert last.kind is InstrKind.RETURN

    def test_call_emits_call_instruction_and_edges(self):
        b = ProgramBuilder("p")
        with b.function("f"):
            b.code(2)
        b.call("f")
        b.code(1)
        cfg = b.build()
        node = [n for n in cfg.structure.items if isinstance(n, CallNode)][0]
        call_block = cfg.block(node.call_block)
        assert call_block.instructions[-1].kind is InstrKind.CALL
        info = cfg.functions["f"]
        assert info.entry_block in cfg.successors(node.call_block)

    def test_call_to_undefined_function_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(ProgramModelError):
            b.call("ghost")

    def test_duplicate_function_rejected(self):
        b = ProgramBuilder("p")
        with b.function("f"):
            b.code(1)
        with pytest.raises(ProgramModelError):
            with b.function("f"):
                b.code(1)

    def test_function_inside_construct_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(ProgramModelError):
            with b.loop(bound=2):
                with b.function("f"):
                    b.code(1)

    def test_two_call_sites_share_function_blocks(self):
        b = ProgramBuilder("p")
        with b.function("f"):
            b.code(3)
        b.call("f")
        b.code(1)
        b.call("f")
        cfg = b.build()
        # the function body exists once in the layout
        fn_blocks = [n for n in (blk.name for blk in cfg.blocks) if n.startswith("f.")]
        assert len(fn_blocks) == len(set(fn_blocks)) == len(cfg.functions["f"].blocks)


class TestStructureHelpers:
    def test_entry_exit_of_seq(self):
        b = ProgramBuilder("p")
        b.code(1)
        b.code(1)
        cfg = b.build()
        assert entry_block_of(cfg.structure) == "__entry"
        assert exit_blocks_of(cfg.structure) == ("__exit",)

    def test_empty_seq_rejected(self):
        with pytest.raises(ProgramModelError):
            entry_block_of(SeqNode([]))
        with pytest.raises(ProgramModelError):
            exit_blocks_of(SeqNode([]))
